//! The daemon itself: a TCP accept loop, one reader thread per
//! connection, a bounded worker pool for pipelined requests, and the
//! request dispatcher that ties the protocol to the sharded caches.
//!
//! Life of an `analyze` request:
//!
//! 1. **Admission gate** — if `max_inflight` analyses are already
//!    admitted (queued or running), the request is rejected immediately
//!    with an `overloaded` error envelope (the 429 of this protocol).
//!    Cheap ops (`register`, `stats`) are never shed.
//! 2. **Program resolution** — a 16-hex fingerprint hits a shard of the
//!    [`ProgramCache`]; inline source is fingerprinted and compiled at
//!    most once (concurrent misses of the same fingerprint wait on the
//!    leader's compile), then shared via `Arc` with every thread.
//! 3. **Session checkout** — with `reuse: true` (the default) a warm
//!    [`awam_core::Session`] is rehydrated from the tenant's pool
//!    shard, so repeat goals are answered straight from the memo table.
//!    With `reuse: false` (and for every `batch` goal) the run uses a
//!    fresh session and is byte-identical to a standalone
//!    [`Analyzer::analyze`].
//! 4. **Deadline** — the effective abstract-instruction budget
//!    (request override, else server default, capped by the server
//!    maximum) is armed on the session; a run that crosses it comes
//!    back as an `over_budget` error envelope and counts toward
//!    `shed_budget`.
//!
//! # Pipelining
//!
//! A connection may send up to [`ServeConfig::pipeline_depth`] requests
//! before reading a response. Requests that carry an `id` are eligible
//! for out-of-order execution on the worker pool (responses come back
//! id-tagged, in completion order); requests *without* an `id` act as
//! ordering barriers — the connection drains its in-flight work, runs
//! the request on the reader thread, and answers in arrival order, so
//! a client that never sends ids observes exactly the PR 8 one-at-a-time
//! protocol. `stats` and `shutdown` are always barriers. When the
//! server runs with one worker (the default on a single-core host), all
//! requests execute inline on the reader thread; pipelining then still
//! pays through syscall coalescing — many requests are read per
//! `read(2)` and their responses are flushed in one `write(2)` when the
//! read buffer runs dry.
//!
//! No request touches a process-global lock: the caches are sharded,
//! counters and latency histograms are per-connection (merged only by a
//! `stats` snapshot), and the admission gate is a single atomic.

use crate::cache::{approx_program_bytes, CompileFailed, ProgramCache, SessionPool};
use crate::protocol::{self, parse_request, Envelope, GoalSpec, ProgramRef, Request};
use crate::stats::{ConnStatsHandle, StatsRegistry};
use awam_core::{migrate_parts, par_map, Analysis, AnalysisError, Analyzer, Session};
use awam_obs::{envelope, InvalidationStats, Json};
use prolog_syntax::parse_program;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of the daemon; `ServeConfig::default()` is sized for a
/// laptop-local daemon and every field can be overridden from the CLI.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Approximate byte budget of the compiled-program cache (split
    /// evenly across its shards).
    pub cache_bytes: usize,
    /// Analyze/batch requests allowed in flight (queued or running)
    /// before the daemon sheds load with `overloaded` responses.
    pub max_inflight: usize,
    /// Abstract-instruction budget applied when a request names none
    /// (`None` = unbounded).
    pub default_budget: Option<u64>,
    /// Hard cap on any request's budget; also applies when neither the
    /// request nor `default_budget` set one (`None` = no cap).
    pub max_budget: Option<u64>,
    /// Warm sessions parked per `(tenant, program)` key.
    pub pool_per_key: usize,
    /// Worker threads a single `batch` request fans its goals across.
    pub batch_workers: usize,
    /// Shard count for the program cache and the session pools
    /// (rounded up to a power of two; 0 = the built-in default).
    pub shards: usize,
    /// Worker-pool threads executing pipelined (id-tagged) requests.
    /// 0 = auto (the host's available parallelism). With one worker the
    /// pool is skipped entirely and requests run inline on each
    /// connection's reader thread.
    pub workers: usize,
    /// Requests one connection may keep in flight before the reader
    /// stops consuming its socket (natural TCP backpressure, never an
    /// error).
    pub pipeline_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_bytes: 64 << 20,
            max_inflight: 256,
            default_budget: None,
            max_budget: None,
            pool_per_key: 4,
            batch_workers: 4,
            shards: 0,
            workers: 0,
            pipeline_depth: 32,
        }
    }
}

/// A unit of pipelined work: one parsed request bound for the pool.
struct Job {
    state: Arc<ServerState>,
    conn: Arc<ConnShared>,
    env: Envelope,
    /// When the request was parsed; latency is measured from here so
    /// queue wait is part of the reported distribution.
    received: Instant,
    /// Whether this job holds an admission slot (analyze/batch).
    gated: bool,
}

/// A bounded pool of worker threads draining one shared job queue.
/// Workers exit when the last sender (owned by [`ServerState`]) drops.
struct WorkerPool {
    tx: mpsc::Sender<Job>,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || {
                // Reset-not-free: one serialization buffer per worker,
                // cleared between responses.
                let mut scratch = String::new();
                loop {
                    let job = match rx.lock().expect("worker queue poisoned").recv() {
                        Ok(job) => job,
                        Err(_) => return,
                    };
                    execute_job(job, &mut scratch);
                }
            });
        }
        WorkerPool { tx }
    }

    fn submit(&self, job: Job) {
        // Send fails only if every worker died; surface that as a
        // closed connection rather than a panic.
        drop(self.tx.send(job));
    }
}

/// Shared daemon state: the sharded caches, the stats registry, and the
/// flags the accept loop watches.
struct ServerState {
    config: ServeConfig,
    cache: ProgramCache,
    pools: SessionPool,
    /// Source text by fingerprint, kept alongside the compiled cache so
    /// `update` can diff the old program against the edited one (the
    /// compiled artifact alone cannot reproduce its clause text).
    /// Entries leave when their program is evicted.
    sources: Mutex<HashMap<u64, Arc<str>>>,
    stats: StatsRegistry,
    /// Admitted (queued or running) analyze/batch requests.
    inflight: AtomicUsize,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    /// `None` = single-worker host; requests execute inline.
    pool_exec: Option<WorkerPool>,
}

/// A bound (but not yet running) daemon. Binding and running are split
/// so callers can learn the ephemeral port before the first request.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// A running daemon spawned onto a background thread; dropping the
/// handle does *not* stop the daemon — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: JoinHandle<io::Result<()>>,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shards = if config.shards == 0 {
            crate::cache::DEFAULT_SHARDS
        } else {
            config.shards
        };
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            config.workers
        };
        let pool_exec = (workers > 1).then(|| WorkerPool::new(workers));
        let state = Arc::new(ServerState {
            cache: ProgramCache::with_shards(config.cache_bytes, shards),
            pools: SessionPool::with_shards(config.pool_per_key, shards),
            sources: Mutex::new(HashMap::new()),
            stats: StatsRegistry::new(),
            inflight: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            pool_exec,
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Run the accept loop on the calling thread until a `shutdown`
    /// request arrives. Each connection gets its own reader thread;
    /// readers outlive the accept loop only until their client hangs
    /// up.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors only
    /// end that connection).
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(&state, stream));
        }
        Ok(())
    }

    /// Run the accept loop on a background thread, returning a handle
    /// that can stop it.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let accept_thread = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            state,
            accept_thread,
        }
    }
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and wait for it to exit. Idempotent; safe
    /// to call after a client already sent `shutdown`.
    pub fn shutdown(self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag when `accept` returns,
        // so poke it with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        drop(self.accept_thread.join());
    }
}

/// Per-connection shared plumbing: the locked write half, the in-flight
/// job count (with its condvar for barriers and depth backpressure),
/// and the connection's stats block.
struct ConnShared {
    writer: Mutex<BufWriter<TcpStream>>,
    /// Jobs submitted to the pool and not yet answered.
    outstanding: Mutex<usize>,
    changed: Condvar,
    stats: ConnStatsHandle,
    /// Set when a response write fails; the reader stops consuming.
    dead: AtomicBool,
}

impl ConnShared {
    /// Wait until every in-flight job of this connection has answered.
    fn drain(&self) {
        let mut outstanding = self.outstanding.lock().expect("outstanding poisoned");
        while *outstanding > 0 {
            outstanding = self.changed.wait(outstanding).expect("drain wait poisoned");
        }
    }

    /// Reserve an in-flight slot, waiting while the pipeline is at
    /// `depth` (backpressure: the reader simply stops consuming).
    fn reserve(&self, depth: usize) {
        let mut outstanding = self.outstanding.lock().expect("outstanding poisoned");
        while *outstanding >= depth {
            outstanding = self.changed.wait(outstanding).expect("slot wait poisoned");
        }
        *outstanding += 1;
    }

    /// Release an in-flight slot; returns true when the pipeline is now
    /// empty (the releasing worker flushes the socket).
    fn release(&self) -> bool {
        let mut outstanding = self.outstanding.lock().expect("outstanding poisoned");
        *outstanding -= 1;
        let empty = *outstanding == 0;
        drop(outstanding);
        self.changed.notify_all();
        empty
    }
}

/// Classify a response into the connection counters (skipped for
/// control-plane responses).
fn count_response(conn: &ConnShared, response: &Json) {
    conn.stats.with(|stats| {
        if response.get("kind").and_then(Json::as_str) == Some("error") {
            stats.serve.responses_error += 1;
            if let Some(code) = response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
            {
                match code {
                    "overloaded" => stats.serve.shed_overload += 1,
                    "over_budget" => stats.serve.shed_budget += 1,
                    _ => {}
                }
            }
        } else {
            stats.serve.responses_ok += 1;
        }
    });
}

/// Serialize `response` into `scratch` and write it under the
/// connection's writer lock. `flush` forces the socket flush; otherwise
/// the bytes ride along until the pipeline drains or the reader is
/// about to block.
fn write_response(conn: &ConnShared, response: &Json, scratch: &mut String, flush: bool) {
    scratch.clear();
    response.emit_into(scratch);
    scratch.push('\n');
    let mut writer = conn.writer.lock().expect("writer poisoned");
    if writer.write_all(scratch.as_bytes()).is_err() || (flush && writer.flush().is_err()) {
        conn.dead.store(true, Ordering::SeqCst);
    }
}

/// Run one pooled job to completion: execute, respond, release the
/// in-flight slot (flushing the socket when the pipeline drained).
fn execute_job(job: Job, scratch: &mut String) {
    let Job {
        state,
        conn,
        env,
        received,
        gated,
    } = job;
    let response = execute_request(&state, &conn, env);
    count_response(&conn, &response);
    record_latency(&conn, gated, received);
    write_response(&conn, &response, scratch, false);
    if gated {
        state.inflight.fetch_sub(1, Ordering::SeqCst);
    }
    if conn.release() {
        let mut writer = conn.writer.lock().expect("writer poisoned");
        if writer.flush().is_err() {
            conn.dead.store(true, Ordering::SeqCst);
        }
    }
}

/// Record analyze/batch latency (queue wait included) into the
/// connection histogram.
fn record_latency(conn: &ConnShared, gated: bool, received: Instant) {
    if gated {
        let micros = u64::try_from(received.elapsed().as_micros()).unwrap_or(u64::MAX);
        conn.stats.with(|stats| stats.latency_us.record(micros));
    }
}

/// True when the reader's buffer already holds a complete request line,
/// i.e. the next `read_line` cannot block on the socket.
fn buffered_line(reader: &BufReader<TcpStream>) -> bool {
    reader.buffer().contains(&b'\n')
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // One-line responses must not sit in Nagle's buffer waiting for an
    // ACK of the request they answer.
    drop(stream.set_nodelay(true));
    let peer_writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(ConnShared {
        writer: Mutex::new(BufWriter::new(peer_writer)),
        outstanding: Mutex::new(0),
        changed: Condvar::new(),
        stats: state.stats.register(),
        dead: AtomicBool::new(false),
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Reset-not-free: the reader's serialization buffer for inline
    // responses, reused across the connection's lifetime.
    let mut scratch = String::new();
    let depth = state.config.pipeline_depth.max(1);
    loop {
        if conn.dead.load(Ordering::SeqCst) {
            break;
        }
        // About to (possibly) block on the socket: make sure every
        // completed response has left the building first.
        if !buffered_line(&reader) {
            let can_block_holding_bytes = {
                let outstanding = conn.outstanding.lock().expect("outstanding poisoned");
                *outstanding > 0
            };
            if !can_block_holding_bytes {
                let mut writer = conn.writer.lock().expect("writer poisoned");
                if writer.flush().is_err() {
                    break;
                }
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let received = Instant::now();
        let env = match parse_request(&line) {
            Ok(env) => env,
            Err(bad) => {
                // Malformed lines are barriers like any other un-id'd
                // request: answer after the pipeline drains, in order.
                conn.stats.with(|s| s.serve.requests += 1);
                conn.drain();
                let response = protocol::error_response("bad_request", &bad.0, None);
                count_response(&conn, &response);
                write_response(&conn, &response, &mut scratch, !buffered_line(&reader));
                continue;
            }
        };
        let control = matches!(env.request, Request::Stats | Request::Shutdown);
        conn.stats.with(|s| {
            if control {
                s.serve.control_ops += 1;
            } else {
                s.serve.requests += 1;
            }
        });

        if control {
            // Control ops are barriers: they observe a quiesced
            // connection and answer in order.
            conn.drain();
            let id = env.id;
            let stop = matches!(env.request, Request::Shutdown);
            let response = match env.request {
                Request::Stats => do_stats(state, id),
                Request::Shutdown => {
                    state.shutting_down.store(true, Ordering::SeqCst);
                    protocol::attach_id(envelope("shutdown", vec![("ok", Json::Bool(true))]), id)
                }
                _ => unreachable!("control ops are stats/shutdown"),
            };
            write_response(&conn, &response, &mut scratch, true);
            if stop {
                // Unblock the accept loop so it observes the flag.
                drop(TcpStream::connect(state.addr));
                break;
            }
            continue;
        }

        // Admission gate for analysis work (register is never shed).
        let gated = matches!(env.request, Request::Analyze { .. } | Request::Batch { .. });
        if gated && state.inflight.fetch_add(1, Ordering::SeqCst) >= state.config.max_inflight {
            state.inflight.fetch_sub(1, Ordering::SeqCst);
            let response = protocol::error_response(
                "overloaded",
                &format!(
                    "in-flight analysis limit ({}) reached; retry later",
                    state.config.max_inflight
                ),
                env.id,
            );
            count_response(&conn, &response);
            // Out-of-order shed is fine when the request carried an id;
            // otherwise answer after the pipeline drains, in order.
            if env.id.is_none() {
                conn.drain();
            }
            write_response(&conn, &response, &mut scratch, !buffered_line(&reader));
            continue;
        }

        match (&state.pool_exec, env.id) {
            (Some(pool), Some(_)) => {
                // Id-tagged request on a multi-worker host: pipeline it.
                conn.reserve(depth);
                pool.submit(Job {
                    state: Arc::clone(state),
                    conn: Arc::clone(&conn),
                    env,
                    received,
                    gated,
                });
            }
            _ => {
                // No id (ordering barrier) or single-worker host:
                // execute on the reader thread, after the pipeline
                // drains so responses stay in arrival order.
                conn.drain();
                let response = execute_request(state, &conn, env);
                count_response(&conn, &response);
                record_latency(&conn, gated, received);
                if gated {
                    state.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                write_response(&conn, &response, &mut scratch, !buffered_line(&reader));
            }
        }
    }
    // Let in-flight workers finish before the reader half goes away;
    // the last one flushes whatever is buffered.
    conn.drain();
}

/// Execute one analysis-plane request (register/analyze/batch).
fn execute_request(state: &ServerState, conn: &ConnShared, env: Envelope) -> Json {
    let id = env.id;
    match env.request {
        Request::Register { source, .. } => do_register(state, &source, id),
        Request::Analyze {
            tenant,
            program,
            goal,
            budget,
            reuse,
        } => do_analyze(state, conn, &tenant, &program, &goal, budget, reuse, id),
        Request::Batch {
            tenant,
            program,
            goals,
            budget,
        } => do_batch(state, &tenant, &program, &goals, budget, id),
        Request::Update { program, source } => do_update(state, conn, program, &source, id),
        Request::Stats | Request::Shutdown => unreachable!("control ops handled by the reader"),
    }
}

/// Compile `source` under the cache's per-fingerprint dedupe, purging
/// the session pools of anything evicted to make room. Returns the
/// compiled artifact and whether *this* call ran the compile.
fn compile_cached(
    state: &ServerState,
    hash: u64,
    source: &str,
) -> Result<(Arc<Analyzer>, bool), Json> {
    let result = state.cache.get_or_compile(hash, || {
        let program = parse_program(source).map_err(|e| CompileFailed {
            code: "parse_error",
            message: e.to_string(),
        })?;
        let analyzer = Analyzer::compile(&program).map_err(|e| CompileFailed {
            code: "compile_error",
            message: e.to_string(),
        })?;
        let analyzer = Arc::new(analyzer);
        let bytes = approx_program_bytes(&analyzer, source.len());
        Ok((analyzer, bytes))
    });
    match result {
        Ok((analyzer, evicted, compiled_now)) => {
            {
                let mut sources = state.sources.lock().expect("sources poisoned");
                sources.entry(hash).or_insert_with(|| Arc::from(source));
                for hash in &evicted {
                    sources.remove(hash);
                }
            }
            for hash in evicted {
                state.pools.purge_program(hash);
            }
            Ok((analyzer, compiled_now))
        }
        Err(failed) => Err(awam_obs::error_envelope(failed.code, &failed.message)),
    }
}

/// Resolve a program reference to its compiled analyzer, compiling
/// inline source on first sight.
fn resolve_program(
    state: &ServerState,
    program: &ProgramRef,
) -> Result<(u64, Arc<Analyzer>), Json> {
    match program {
        ProgramRef::Hash(hash) => state.cache.get(*hash).map(|a| (*hash, a)).ok_or_else(|| {
            awam_obs::error_envelope(
                "unknown_program",
                &format!(
                    "program {} is not registered (or was evicted); re-register it",
                    protocol::hash_hex(*hash)
                ),
            )
        }),
        ProgramRef::Source(source) => {
            let hash = awam_core::program_fingerprint(source);
            let (analyzer, _) = compile_cached(state, hash, source)?;
            Ok((hash, analyzer))
        }
    }
}

fn do_register(state: &ServerState, source: &str, id: Option<i64>) -> Json {
    let hash = awam_core::program_fingerprint(source);
    let compiled_now = match compile_cached(state, hash, source) {
        Ok((_, compiled_now)) => compiled_now,
        Err(response) => return protocol::attach_id(response, id),
    };
    protocol::attach_id(
        envelope(
            "register",
            vec![
                ("ok", Json::Bool(true)),
                ("program", Json::Str(protocol::hash_hex(hash))),
                ("cached", Json::Bool(!compiled_now)),
            ],
        ),
        id,
    )
}

/// Patch a registered program in place: compile the edited source,
/// migrate every parked warm session (all tenants) onto the new
/// fingerprint through the incremental invalidation path, and drop
/// whatever cannot be migrated (a fresh session is always correct).
fn do_update(
    state: &ServerState,
    conn: &ConnShared,
    old_hash: u64,
    source: &str,
    id: Option<i64>,
) -> Json {
    let old_source = state
        .sources
        .lock()
        .expect("sources poisoned")
        .get(&old_hash)
        .cloned();
    let (Some(old_source), Some(old_analyzer)) = (old_source, state.cache.get(old_hash)) else {
        return protocol::error_response(
            "unknown_program",
            &format!(
                "program {} is not registered (or was evicted); register the new source instead",
                protocol::hash_hex(old_hash)
            ),
            id,
        );
    };
    let new_hash = awam_core::program_fingerprint(source);
    let (new_analyzer, _) = match compile_cached(state, new_hash, source) {
        Ok(found) => found,
        Err(response) => return protocol::attach_id(response, id),
    };
    let mut migrated = 0u64;
    let mut invalidation = InvalidationStats::default();
    if new_hash != old_hash {
        // Both texts compiled, so both parse; a failure here means the
        // source side-store went stale, and without a parse there is no
        // clause diff — fall back to purging the old pools.
        match (parse_program(&old_source), parse_program(source)) {
            (Ok(old_program), Ok(new_program)) => {
                let budget = effective_budget(None, &state.config);
                for (tenant, parts) in state.pools.take_program(old_hash) {
                    // A failed migration (budget, impossible remap)
                    // leaves the table untrustworthy: drop the session
                    // and let the tenant's next request start fresh.
                    if let Ok((parts, stats)) = migrate_parts(
                        &old_program,
                        &new_program,
                        &old_analyzer,
                        &new_analyzer,
                        parts,
                        budget,
                    ) {
                        state.pools.checkin(&tenant, new_hash, parts);
                        migrated += 1;
                        invalidation.entries_before += stats.entries_before;
                        invalidation.entries_kept += stats.entries_kept;
                        invalidation.entries_reset += stats.entries_reset;
                        invalidation.entries_dropped += stats.entries_dropped;
                        invalidation.frontier += stats.frontier;
                        invalidation.refix_explorations += stats.refix_explorations;
                        invalidation.refix_instructions += stats.refix_instructions;
                        // The clause diff is per-program, not
                        // per-session: identical for every migration.
                        invalidation.preds_changed = stats.preds_changed;
                        invalidation.preds_removed = stats.preds_removed;
                    }
                }
            }
            _ => state.pools.purge_program(old_hash),
        }
    }
    conn.stats.with(|s| {
        s.serve.updates += 1;
        s.serve.sessions_migrated += migrated;
    });
    protocol::attach_id(
        envelope(
            "update",
            vec![
                ("ok", Json::Bool(true)),
                ("program", Json::Str(protocol::hash_hex(new_hash))),
                ("previous", Json::Str(protocol::hash_hex(old_hash))),
                ("migrated", Json::Int(migrated as i64)),
                ("invalidation", invalidation.to_json()),
            ],
        ),
        id,
    )
}

fn effective_budget(requested: Option<u64>, config: &ServeConfig) -> Option<u64> {
    let base = requested.or(config.default_budget);
    match (base, config.max_budget) {
        (Some(b), Some(cap)) => Some(b.min(cap)),
        (None, cap) => cap,
        (b, None) => b,
    }
}

fn analysis_error_response(err: &AnalysisError, id: Option<i64>) -> Json {
    let code = match err {
        AnalysisError::BudgetExceeded { .. } => "over_budget",
        _ => "analysis_error",
    };
    protocol::error_response(code, &err.to_string(), id)
}

/// One goal's slice of an analyze/batch response payload.
fn goal_payload(
    goal: &GoalSpec,
    analysis: &Analysis,
    analyzer: &Analyzer,
) -> Vec<(&'static str, Json)> {
    vec![
        ("goal", Json::Str(goal.goal.clone())),
        (
            "entry",
            Json::Arr(goal.entry.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("iterations", Json::Int(analysis.iterations as i64)),
        (
            "instructions_executed",
            Json::Int(analysis.instructions_executed as i64),
        ),
        ("report", Json::Str(analysis.report(analyzer))),
    ]
}

#[allow(clippy::too_many_arguments)]
fn do_analyze(
    state: &ServerState,
    conn: &ConnShared,
    tenant: &str,
    program: &ProgramRef,
    goal: &GoalSpec,
    budget: Option<u64>,
    reuse: bool,
    id: Option<i64>,
) -> Json {
    let (hash, analyzer) = match resolve_program(state, program) {
        Ok(found) => found,
        Err(response) => return protocol::attach_id(response, id),
    };
    let parked = if reuse {
        state.pools.checkout(tenant, hash)
    } else {
        None
    };
    let warmed = parked.is_some();
    let mut session = match parked {
        Some(parts) => Session::resume(&analyzer, parts),
        None => Session::new(&analyzer),
    };
    session.set_step_budget(effective_budget(budget, &state.config));
    let specs: Vec<&str> = goal.entry.iter().map(String::as_str).collect();
    match session.analyze_query(&goal.goal, &specs) {
        Ok(analysis) => {
            let warm_hit = warmed && analysis.iterations == 0;
            if warm_hit {
                conn.stats.with(|s| s.serve.warm_hits += 1);
            }
            if reuse {
                state.pools.checkin(tenant, hash, session.into_parts());
            }
            let mut pairs = vec![
                ("ok", Json::Bool(true)),
                ("program", Json::Str(protocol::hash_hex(hash))),
                ("reused", Json::Bool(warmed)),
                ("warm", Json::Bool(warm_hit)),
            ];
            pairs.extend(goal_payload(goal, &analysis, &analyzer));
            protocol::attach_id(envelope("analyze", pairs), id)
        }
        // The session is dropped, not checked back in: after a
        // resource-bound error its table is no longer trustworthy.
        Err(err) => analysis_error_response(&err, id),
    }
}

fn do_batch(
    state: &ServerState,
    _tenant: &str,
    program: &ProgramRef,
    goals: &[GoalSpec],
    budget: Option<u64>,
    id: Option<i64>,
) -> Json {
    let (hash, analyzer) = match resolve_program(state, program) {
        Ok(found) => found,
        Err(response) => return protocol::attach_id(response, id),
    };
    let effective = effective_budget(budget, &state.config);
    // Every batch goal runs in its own fresh session (single-shot
    // identical results), fanned across the configured workers.
    let results = par_map(goals, state.config.batch_workers, |_, goal| {
        let mut session = Session::new(&analyzer);
        session.set_step_budget(effective);
        let specs: Vec<&str> = goal.entry.iter().map(String::as_str).collect();
        session.analyze_query(&goal.goal, &specs)
    });
    let rendered: Vec<Json> = goals
        .iter()
        .zip(&results)
        .map(|(goal, result)| match result {
            Ok(analysis) => {
                let mut pairs = vec![("ok", Json::Bool(true))];
                pairs.extend(goal_payload(goal, analysis, &analyzer));
                Json::obj(pairs)
            }
            Err(err) => {
                let code = match err {
                    AnalysisError::BudgetExceeded { .. } => "over_budget",
                    _ => "analysis_error",
                };
                Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("goal", Json::Str(goal.goal.clone())),
                    (
                        "error",
                        Json::obj(vec![
                            ("code", Json::Str(code.to_owned())),
                            ("message", Json::Str(err.to_string())),
                        ]),
                    ),
                ])
            }
        })
        .collect();
    let ok = rendered
        .iter()
        .all(|r| r.get("ok").and_then(Json::as_bool) == Some(true));
    protocol::attach_id(
        envelope(
            "batch",
            vec![
                ("ok", Json::Bool(ok)),
                ("program", Json::Str(protocol::hash_hex(hash))),
                ("results", Json::Arr(rendered)),
            ],
        ),
        id,
    )
}

fn do_stats(state: &ServerState, id: Option<i64>) -> Json {
    let (programs, cache_bytes, cache_budget, cache) = state.cache.snapshot();
    let (parked, pool) = state.pools.snapshot();
    let merged = state.stats.snapshot();
    let mut stats = merged.serve;
    stats.program_cache_hits = cache.hits;
    stats.program_cache_misses = cache.misses;
    stats.program_cache_evictions = cache.evictions;
    stats.session_pool_hits = pool.hits;
    stats.session_pool_misses = pool.misses;
    let latency = &merged.latency_us;
    let latency_json = Json::obj(vec![
        ("count", Json::Int(latency.count as i64)),
        ("p50_us", Json::Int(latency.quantile(0.50) as i64)),
        ("p90_us", Json::Int(latency.quantile(0.90) as i64)),
        ("p99_us", Json::Int(latency.quantile(0.99) as i64)),
        ("p999_us", Json::Int(latency.quantile(0.999) as i64)),
        (
            "max_us",
            Json::Int(if latency.count == 0 {
                0
            } else {
                latency.max as i64
            }),
        ),
    ]);
    let Json::Obj(mut counters) = stats.to_json() else {
        unreachable!("ServeStats::to_json returns an object");
    };
    counters.push((
        "compile_dedup_waits".to_owned(),
        Json::Int(cache.dedup_waits as i64),
    ));
    counters.push((
        "cache_hit_rate".to_owned(),
        Json::Float(stats.cache_hit_rate()),
    ));
    counters.push((
        "pool_hit_rate".to_owned(),
        Json::Float(stats.pool_hit_rate()),
    ));
    protocol::attach_id(
        envelope(
            "stats",
            vec![
                ("ok", Json::Bool(true)),
                (
                    "uptime_ms",
                    Json::Int(
                        i64::try_from(state.started.elapsed().as_millis()).unwrap_or(i64::MAX),
                    ),
                ),
                ("counters", Json::Obj(counters)),
                (
                    "program_cache",
                    Json::obj(vec![
                        ("programs", Json::Int(programs as i64)),
                        ("bytes", Json::Int(cache_bytes as i64)),
                        ("byte_budget", Json::Int(cache_budget as i64)),
                        ("shards", Json::Int(state.cache.shard_count() as i64)),
                    ]),
                ),
                (
                    "session_pools",
                    Json::obj(vec![("parked", Json::Int(parked as i64))]),
                ),
                ("latency", latency_json),
                (
                    "inflight",
                    Json::Int(state.inflight.load(Ordering::SeqCst) as i64),
                ),
            ],
        ),
        id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const APP: &str = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

    fn spawn_default() -> ServerHandle {
        Server::bind("127.0.0.1:0", ServeConfig::default())
            .expect("bind ephemeral port")
            .spawn()
    }

    #[test]
    fn register_analyze_stats_roundtrip() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");

        let reg = client.register("t1", APP).expect("register");
        assert_eq!(reg.get("kind").and_then(Json::as_str), Some("register"));
        assert_eq!(reg.get("schema").and_then(Json::as_str), Some("awam/v1"));
        let hash = reg
            .get("program")
            .and_then(Json::as_str)
            .expect("hash")
            .to_owned();

        let line = format!(
            r#"{{"op":"analyze","tenant":"t1","program":"{hash}","goal":"app","entry":["glist","glist","var"],"id":3}}"#
        );
        let first = client.call_line(&line).expect("analyze");
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(first.get("id").and_then(Json::as_i64), Some(3));
        assert_eq!(first.get("warm").and_then(Json::as_bool), Some(false));
        let second = client.call_line(&line).expect("analyze again");
        assert_eq!(second.get("warm").and_then(Json::as_bool), Some(true));
        // The report header carries per-run work counters (0 iterations
        // on the warm hit); the analysis results after it must match.
        let results_of = |doc: &Json| {
            let report = doc.get("report").and_then(Json::as_str).expect("report");
            let split = report.find("\n\n").expect("report has a result section");
            report[split..].to_owned()
        };
        assert_eq!(
            results_of(&second),
            results_of(&first),
            "repeat goal answers match"
        );

        let stats = client.stats().expect("stats");
        let counters = stats.get("counters").expect("counters");
        assert_eq!(
            counters.get("program_cache_misses").and_then(Json::as_i64),
            Some(1),
            "compiled exactly once"
        );
        assert_eq!(
            counters.get("session_pool_hits").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(counters.get("warm_hits").and_then(Json::as_i64), Some(1));
        // Control ops are counted apart from analysis requests, so the
        // request/response totals reconcile exactly.
        assert_eq!(counters.get("requests").and_then(Json::as_i64), Some(3));
        assert_eq!(
            counters.get("control_ops").and_then(Json::as_i64),
            Some(1),
            "this stats call itself"
        );
        assert_eq!(
            counters.get("responses_ok").and_then(Json::as_i64),
            Some(3),
            "register + two analyzes; control responses not counted"
        );
        handle.shutdown();
    }

    #[test]
    fn zero_inflight_limit_sheds_every_analysis() {
        let config = ServeConfig {
            max_inflight: 0,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(&format!(
                r#"{{"op":"analyze","source":{},"goal":"app","entry":["glist","glist","var"]}}"#,
                Json::Str(APP.to_owned()).emit()
            ))
            .expect("shed response");
        assert_eq!(response.get("kind").and_then(Json::as_str), Some("error"));
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get("shed_overload"))
                .and_then(Json::as_i64),
            Some(1)
        );
        handle.shutdown();
    }

    #[test]
    fn tiny_budget_returns_over_budget_envelope() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(&format!(
                r#"{{"op":"analyze","source":{},"goal":"app","entry":["glist","glist","var"],"budget":0}}"#,
                Json::Str(APP.to_owned()).emit()
            ))
            .expect("over-budget response");
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("over_budget")
        );
        handle.shutdown();
    }

    #[test]
    fn unknown_hash_is_a_clean_error() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(r#"{"op":"analyze","program":"00000000deadbeef","goal":"p","entry":[]}"#)
            .expect("error response");
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("unknown_program")
        );
        handle.shutdown();
    }

    #[test]
    fn batch_runs_all_goals_fresh() {
        let handle = spawn_default();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let response = client
            .call_line(&format!(
                r#"{{"op":"batch","source":{},"goals":[{{"goal":"app","entry":["glist","glist","var"]}},{{"goal":"app","entry":["var","var","glist"]}}]}}"#,
                Json::Str(APP.to_owned()).emit()
            ))
            .expect("batch response");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        let results = response
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array");
        assert_eq!(results.len(), 2);
        for r in results {
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            assert!(r.get("iterations").and_then(Json::as_i64).unwrap_or(0) > 0);
        }
        handle.shutdown();
    }

    #[test]
    fn pipelined_ids_answer_every_request_out_of_order_allowed() {
        // Force the pooled (multi-worker) path regardless of host
        // parallelism, with a deep pipeline.
        let config = ServeConfig {
            workers: 4,
            pipeline_depth: 8,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let reg = client.register("t", APP).expect("register");
        let hash = reg
            .get("program")
            .and_then(Json::as_str)
            .expect("hash")
            .to_owned();

        // Fire 8 id-tagged analyzes without reading, then collect all 8.
        for id in 0..8 {
            client
                .send_line(&format!(
                    r#"{{"op":"analyze","tenant":"t","program":"{hash}","goal":"app","entry":["glist","glist","var"],"id":{id}}}"#
                ))
                .expect("send");
        }
        client.flush().expect("flush");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..8 {
            let response = client.recv().expect("response");
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
            let id = response
                .get("id")
                .and_then(Json::as_i64)
                .expect("id echoed");
            assert!(seen.insert(id), "no duplicate response ids");
        }
        assert_eq!(
            seen,
            (0..8).collect(),
            "every request answered exactly once"
        );
        handle.shutdown();
    }

    #[test]
    fn unids_are_barriers_and_stay_in_order() {
        let config = ServeConfig {
            workers: 4,
            pipeline_depth: 8,
            ..ServeConfig::default()
        };
        let handle = Server::bind("127.0.0.1:0", config).expect("bind").spawn();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let reg = client.register("t", APP).expect("register");
        let hash = reg
            .get("program")
            .and_then(Json::as_str)
            .expect("hash")
            .to_owned();

        // Mix id-tagged and bare requests; the bare ones must come back
        // in their arrival positions relative to each other, each after
        // all preceding work (barrier semantics).
        for i in 0..4 {
            client
                .send_line(&format!(
                    r#"{{"op":"analyze","tenant":"t","program":"{hash}","goal":"app","entry":["glist","glist","var"],"id":{i}}}"#
                ))
                .expect("send");
            client
                .send_line(&format!(
                    r#"{{"op":"analyze","tenant":"t","program":"{hash}","goal":"app","entry":["var","var","glist"],"reuse":false}}"#
                ))
                .expect("send");
        }
        client.flush().expect("flush");
        let mut bare_positions = Vec::new();
        for pos in 0..8 {
            let response = client.recv().expect("response");
            assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
            if response.get("id").is_none() {
                bare_positions.push(pos);
                assert_eq!(
                    response
                        .get("entry")
                        .and_then(Json::as_arr)
                        .map(<[Json]>::len),
                    Some(3)
                );
            }
        }
        assert_eq!(bare_positions.len(), 4, "all bare requests answered");
        // Each bare request is a barrier: everything sent before it has
        // already been answered, so bare response k sits at stream
        // position 2k + 1.
        assert_eq!(bare_positions, vec![1, 3, 5, 7]);
        handle.shutdown();
    }
}
