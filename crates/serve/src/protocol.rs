//! The wire protocol of the analysis daemon: line-delimited JSON.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line, wrapped in the workspace's versioned
//! envelope (`{"schema": "awam/v1", "kind": …}` — see
//! [`awam_obs::envelope()`]). Requests carry an `op` field naming the
//! operation and may carry an `id` (any integer) that the response
//! echoes, so clients may pipeline requests over one connection.
//!
//! | op | fields | response kind |
//! |---|---|---|
//! | `register` | `tenant`, `program` (source text) | `register` |
//! | `analyze` | `tenant`, `program` (16-hex hash) or `source`, `goal`, `entry` (spec array), optional `budget`, `reuse` | `analyze` |
//! | `batch` | like `analyze` with `goals: [{goal, entry}, …]` | `batch` |
//! | `update` | `program` (16-hex hash of the old version), `source` (new text) | `update` |
//! | `stats` | — | `stats` |
//! | `shutdown` | — | `shutdown` |
//!
//! Failures come back as the standard error envelope
//! (`kind: "error"`, `ok: false`, `error.code` ∈ `bad_request`,
//! `unknown_program`, `parse_error`, `compile_error`,
//! `analysis_error`, `over_budget`, `overloaded`, `shutting_down`)
//! with the request `id` echoed when it was present.

use awam_obs::{error_envelope, Json};

/// One goal of a `batch` request: entry predicate plus spec strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoalSpec {
    /// Entry predicate name.
    pub goal: String,
    /// Entry calling-pattern specs (one per argument).
    pub entry: Vec<String>,
}

/// How an `analyze`/`batch` request names its program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramRef {
    /// A 16-hex-digit fingerprint of previously registered source.
    Hash(u64),
    /// Inline source text (registered implicitly).
    Source(String),
}

/// A parsed daemon request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Compile (or find cached) `program` and return its fingerprint.
    Register {
        /// Tenant namespace for the warm-session pool.
        tenant: String,
        /// Prolog source text.
        source: String,
    },
    /// Analyze one entry goal against a registered program.
    Analyze {
        /// Tenant namespace for the warm-session pool.
        tenant: String,
        /// The program to analyze.
        program: ProgramRef,
        /// The goal to run.
        goal: GoalSpec,
        /// Per-request abstract-instruction budget (overrides the
        /// server default; capped by the server maximum).
        budget: Option<u64>,
        /// Reuse the tenant's warm session pool (default `true`). When
        /// `false` the request runs in a fresh session, byte-identical
        /// to a standalone `Analyzer::analyze`.
        reuse: bool,
    },
    /// Analyze several goals, fanned across the server's batch workers,
    /// each in a fresh session (batch results are always
    /// single-shot-identical).
    Batch {
        /// Tenant namespace (counted per tenant; batch goals always run
        /// in fresh sessions).
        tenant: String,
        /// The program to analyze.
        program: ProgramRef,
        /// The goals to run.
        goals: Vec<GoalSpec>,
        /// Per-request abstract-instruction budget for every goal.
        budget: Option<u64>,
    },
    /// Replace a registered program with an edited version, migrating
    /// every parked warm session (all tenants) onto the new fingerprint
    /// via the incremental invalidation path instead of purging them.
    Update {
        /// Fingerprint of the program being replaced.
        program: u64,
        /// The edited source text.
        source: String,
    },
    /// Snapshot the server counters, cache and pool state.
    Stats,
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

/// A request plus the optional client-chosen `id` echoed in responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// The operation.
    pub request: Request,
    /// Client correlation id, echoed verbatim.
    pub id: Option<i64>,
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for BadRequest {}

fn required_str(doc: &Json, key: &str, op: &str) -> Result<String, BadRequest> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| BadRequest(format!("{op}: missing string field `{key}`")))
}

fn spec_list(doc: &Json, key: &str, op: &str) -> Result<Vec<String>, BadRequest> {
    let Some(value) = doc.get(key) else {
        return Err(BadRequest(format!("{op}: missing array field `{key}`")));
    };
    let Some(items) = value.as_arr() else {
        return Err(BadRequest(format!("{op}: `{key}` must be an array")));
    };
    items
        .iter()
        .map(|i| {
            i.as_str()
                .map(str::to_owned)
                .ok_or_else(|| BadRequest(format!("{op}: `{key}` must contain strings")))
        })
        .collect()
}

/// Parse a program reference: `program` as a 16-hex hash, or inline
/// `source` text. Inline source implicitly registers.
fn program_ref(doc: &Json, op: &str) -> Result<ProgramRef, BadRequest> {
    if let Some(hash) = doc.get("program").and_then(Json::as_str) {
        let parsed = u64::from_str_radix(hash, 16)
            .map_err(|_| BadRequest(format!("{op}: `program` must be a 16-hex-digit hash")))?;
        return Ok(ProgramRef::Hash(parsed));
    }
    if let Some(source) = doc.get("source").and_then(Json::as_str) {
        return Ok(ProgramRef::Source(source.to_owned()));
    }
    Err(BadRequest(format!(
        "{op}: need `program` (registered hash) or `source` (inline text)"
    )))
}

fn budget(doc: &Json) -> Result<Option<u64>, BadRequest> {
    match doc.get("budget") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| BadRequest("`budget` must be a non-negative integer".to_owned())),
    }
}

/// Parse one request line.
///
/// # Errors
///
/// [`BadRequest`] with a human-readable reason; the server maps it to a
/// `bad_request` error envelope.
pub fn parse_request(line: &str) -> Result<Envelope, BadRequest> {
    let doc = Json::parse(line).map_err(|e| BadRequest(format!("malformed JSON: {e}")))?;
    let id = doc.get("id").and_then(Json::as_i64);
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| BadRequest("missing string field `op`".to_owned()))?;
    let request = match op {
        "register" => Request::Register {
            tenant: tenant(&doc),
            source: required_str(&doc, "program", "register")?,
        },
        "analyze" => Request::Analyze {
            tenant: tenant(&doc),
            program: program_ref(&doc, "analyze")?,
            goal: GoalSpec {
                goal: required_str(&doc, "goal", "analyze")?,
                entry: spec_list(&doc, "entry", "analyze")?,
            },
            budget: budget(&doc)?,
            reuse: doc.get("reuse").and_then(Json::as_bool).unwrap_or(true),
        },
        "batch" => {
            let Some(goal_docs) = doc.get("goals").and_then(Json::as_arr) else {
                return Err(BadRequest("batch: missing array field `goals`".to_owned()));
            };
            let goals = goal_docs
                .iter()
                .map(|g| {
                    Ok(GoalSpec {
                        goal: required_str(g, "goal", "batch")?,
                        entry: spec_list(g, "entry", "batch")?,
                    })
                })
                .collect::<Result<Vec<_>, BadRequest>>()?;
            if goals.is_empty() {
                return Err(BadRequest("batch: `goals` must not be empty".to_owned()));
            }
            Request::Batch {
                tenant: tenant(&doc),
                program: program_ref(&doc, "batch")?,
                goals,
                budget: budget(&doc)?,
            }
        }
        "update" => {
            let hash = required_str(&doc, "program", "update")?;
            let program = u64::from_str_radix(&hash, 16)
                .map_err(|_| BadRequest("update: `program` must be a 16-hex-digit hash".to_owned()))?;
            Request::Update {
                program,
                source: required_str(&doc, "source", "update")?,
            }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(BadRequest(format!("unknown op `{other}`"))),
    };
    Ok(Envelope { request, id })
}

/// The default tenant when a request names none: every anonymous client
/// shares one pool namespace.
fn tenant(doc: &Json) -> String {
    doc.get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("default")
        .to_owned()
}

/// Render a program fingerprint the way the wire carries it: 16 hex
/// digits, zero-padded.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// An error envelope with the request `id` echoed (when present).
pub fn error_response(code: &str, message: &str, id: Option<i64>) -> Json {
    attach_id(error_envelope(code, message), id)
}

/// Echo the request `id` into a response document.
pub fn attach_id(mut doc: Json, id: Option<i64>) -> Json {
    if let (Json::Obj(pairs), Some(id)) = (&mut doc, id) {
        pairs.push(("id".to_owned(), Json::Int(id)));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_register() {
        let env = parse_request(r#"{"op":"register","tenant":"t1","program":"a.","id":7}"#)
            .expect("parses");
        assert_eq!(env.id, Some(7));
        assert_eq!(
            env.request,
            Request::Register {
                tenant: "t1".to_owned(),
                source: "a.".to_owned()
            }
        );
    }

    #[test]
    fn parses_analyze_with_hash_and_budget() {
        let env = parse_request(
            r#"{"op":"analyze","program":"00000000000000ff","goal":"app","entry":["glist","var"],"budget":1000,"reuse":false}"#,
        )
        .expect("parses");
        let Request::Analyze {
            tenant,
            program,
            goal,
            budget,
            reuse,
        } = env.request
        else {
            panic!("wrong op");
        };
        assert_eq!(tenant, "default");
        assert_eq!(program, ProgramRef::Hash(0xff));
        assert_eq!(goal.goal, "app");
        assert_eq!(goal.entry, vec!["glist".to_owned(), "var".to_owned()]);
        assert_eq!(budget, Some(1000));
        assert!(!reuse);
    }

    #[test]
    fn parses_update() {
        let env = parse_request(
            r#"{"op":"update","program":"00000000000000ff","source":"a.\nb.","id":4}"#,
        )
        .expect("parses");
        assert_eq!(env.id, Some(4));
        assert_eq!(
            env.request,
            Request::Update {
                program: 0xff,
                source: "a.\nb.".to_owned()
            }
        );
        assert!(parse_request(r#"{"op":"update","source":"a."}"#).is_err());
        assert!(parse_request(r#"{"op":"update","program":"zz","source":"a."}"#).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"nope"}"#).is_err());
        assert!(parse_request(r#"{"op":"analyze","goal":"a","entry":[]}"#).is_err());
        assert!(parse_request(r#"{"op":"analyze","program":"zz","goal":"a","entry":[]}"#).is_err());
        assert!(parse_request(r#"{"op":"batch","source":"a.","goals":[]}"#).is_err());
    }

    #[test]
    fn hash_roundtrips_through_hex() {
        let h = awam_core::program_fingerprint("app([], L, L).");
        let env = parse_request(&format!(
            r#"{{"op":"analyze","program":"{}","goal":"app","entry":[]}}"#,
            hash_hex(h)
        ))
        .expect("parses");
        let Request::Analyze { program, .. } = env.request else {
            panic!("wrong op");
        };
        assert_eq!(program, ProgramRef::Hash(h));
    }
}
