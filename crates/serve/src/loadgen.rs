//! The serve load generator: seed-replayable concurrent traffic plus
//! the `BENCH_serve.json` summary, shared by `awam loadgen` and the
//! bench gate.
//!
//! # Methodology
//!
//! The generator is a **closed-loop, windowed** driver: every client
//! thread owns one connection and keeps at most `pipeline_depth`
//! id-tagged requests in flight, sending a full window with a single
//! flush and then reading the window's responses back (matching them to
//! send timestamps by id, so out-of-order completion is measured
//! correctly). Depth 1 degenerates to the PR 8 one-at-a-time driver.
//!
//! Two deliberate choices keep the *client* cheap enough that the
//! numbers measure the daemon, not the driver (on a single-core host
//! the two compete for the same CPU):
//!
//! * Request lines are pre-rendered before the clock starts — the
//!   traffic schedule (which program, which tenant, hot-set skew) is
//!   identical to the unpipelined driver because the RNG draws happen
//!   in the same order.
//! * Responses are classified by a scanner (envelope prefix for
//!   ok/error, tail scan for the id) instead of a full JSON parse; a
//!   parse of every ~600-byte response costs more than the daemon
//!   spends producing it. Correctness of response *bytes* is covered by
//!   the byte-equality integration tests, not the benchmark driver.
//!
//! Latency is measured per request from the moment its line is written
//! into the connection's buffer to the moment its response line is
//! read, so queueing delay inside the window is included — quantiles
//! reported here are client-visible under that concurrency, directly
//! comparable across pipeline depths. Samples are kept raw and sorted
//! once at the end; quantiles are exact, not histogram-bucketed.

use crate::client::Client;
use crate::server::{ServeConfig, Server};
use awam_obs::{envelope, Json};
use awam_testkit::{gen_program, GenConfig, Rng};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Traffic shape of one loadgen run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Target daemon (`None` = spawn an in-process daemon on an
    /// ephemeral port with default [`ServeConfig`]).
    pub addr: Option<String>,
    /// Distinct generated programs registered up front.
    pub programs: usize,
    /// Concurrent client threads (one connection each).
    pub clients: usize,
    /// Analyze requests per client.
    pub queries: usize,
    /// Tenant names the clients cycle through.
    pub tenants: usize,
    /// RNG seed; same seed + same shape = same request schedule.
    pub seed: u64,
    /// Requests each client keeps in flight (1 = classic stop-and-wait).
    pub pipeline_depth: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: None,
            programs: 100,
            clients: 8,
            queries: 50,
            tenants: 4,
            seed: 1,
            pipeline_depth: 1,
        }
    }
}

/// True unless the response line is an error envelope. Responses always
/// start with the fixed `schema`/`kind` prefix (see
/// [`awam_obs::envelope`]), so a prefix check replaces a JSON parse.
fn response_ok(line: &str) -> bool {
    !line.starts_with(r#"{"schema":"awam/v1","kind":"error""#)
}

/// Extract the echoed request id. The server appends `id` as the last
/// key, so scan from the tail; quotes inside report strings are escaped
/// (`\"`), so the raw `,"id":` byte sequence cannot occur inside them.
fn response_id(line: &str) -> Option<usize> {
    let at = line.rfind(r#","id":"#)? + 6;
    let digits = line[at..].trim_end_matches('}');
    digits.parse().ok()
}

/// Drive `config`'s traffic at the daemon and return the
/// `serve-bench` summary document.
///
/// # Errors
///
/// Connection failures, a register that does not return a program
/// hash, or a client thread losing its connection mid-run.
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<Json> {
    let LoadgenConfig {
        addr,
        programs,
        clients,
        queries,
        tenants,
        seed,
        pipeline_depth,
    } = config.clone();
    let depth = pipeline_depth.max(1);

    // Spin up an in-process daemon unless aimed at an external one.
    let local = match &addr {
        Some(_) => None,
        None => Some(Server::bind("127.0.0.1:0", ServeConfig::default())?.spawn()),
    };
    let target = match (&addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(handle)) => handle.addr().to_string(),
        (None, None) => unreachable!("either --addr or a local daemon"),
    };

    // Seed-replayable corpus: `programs` distinct generated programs,
    // each with entry predicate p0.
    let mut rng = Rng::new(seed);
    let gen_config = GenConfig::default();
    let corpus: Vec<(String, usize)> = (0..programs)
        .map(|_| {
            let p = gen_program(&mut rng, &gen_config);
            (p.source(), p.entry_arity())
        })
        .collect();

    // Register the corpus up front (one compile per program).
    let mut registrar = Client::connect(&target)?;
    let mut hashes = Vec::with_capacity(corpus.len());
    for (source, _) in &corpus {
        let response = registrar.register("loadgen", source)?;
        let hash = response
            .get("program")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                io::Error::other(format!("loadgen: register failed: {}", response.emit()))
            })?
            .to_owned();
        hashes.push(hash);
    }

    // Pre-render each client's request lines. The RNG stream and the
    // draw order per query are identical to the unpipelined driver, so
    // the traffic schedule (program choice, hot-set skew, tenant
    // assignment) is byte-for-byte the same for a given seed.
    let scripts: Vec<Vec<String>> = (0..clients)
        .map(|client_idx| {
            let mut rng = Rng::new(seed ^ (client_idx as u64).wrapping_mul(0x9e37));
            let tenant = format!("tenant{}", client_idx % tenants);
            (0..queries)
                .map(|query_idx| {
                    // Skew toward a hot subset so warm sessions pay
                    // off, the way real tenants re-query the same
                    // programs.
                    let idx = if rng.below(2) == 0 {
                        rng.below((hashes.len() as u64).div_ceil(10)) as usize
                    } else {
                        rng.below(hashes.len() as u64) as usize
                    };
                    let arity = corpus[idx].1;
                    let entry: Vec<&str> = vec!["\"any\""; arity];
                    format!(
                        r#"{{"op":"analyze","tenant":"{tenant}","program":"{}","goal":"p0","entry":[{}],"reuse":true,"id":{query_idx}}}"#,
                        hashes[idx],
                        entry.join(",")
                    )
                })
                .collect()
        })
        .collect();

    // Fan the load across client threads; latency samples are kept raw
    // so the committed quantiles are exact.
    let latency = Mutex::new(Vec::<u64>::new());
    let ok_count = AtomicU64::new(0);
    let err_count = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| -> io::Result<()> {
        let mut joins = Vec::new();
        for script in &scripts {
            let (target, latency) = (&target, &latency);
            let (ok_count, err_count) = (&ok_count, &err_count);
            joins.push(scope.spawn(move || -> io::Result<()> {
                let mut client = Client::connect(target)?;
                let mut send_at: Vec<Instant> = Vec::with_capacity(script.len());
                let mut samples: Vec<u64> = Vec::with_capacity(script.len());
                let mut ok = 0u64;
                let mut err = 0u64;
                // Windowed closed loop: send `depth` lines, one flush,
                // then read the window back (ids may arrive out of
                // order within the window, never across windows). One
                // flush and one or two reads per window is what lets a
                // single-core box spend its cycles on analysis instead
                // of syscalls.
                let mut received = 0usize;
                for window in script.chunks(depth) {
                    for line in window {
                        send_at.push(Instant::now());
                        client.send_line(line)?;
                    }
                    client.flush()?;
                    for _ in window {
                        let line = client.recv_line()?;
                        if response_ok(line) {
                            ok += 1;
                        } else {
                            err += 1;
                        }
                        let at = response_id(line)
                            .and_then(|id| send_at.get(id))
                            .copied()
                            // Un-id'd error (e.g. bad_request): charge
                            // it to the oldest outstanding request.
                            .unwrap_or(send_at[received]);
                        samples.push(u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX));
                        received += 1;
                    }
                }
                latency.lock().expect("latency lock").extend(samples);
                ok_count.fetch_add(ok, Ordering::Relaxed);
                err_count.fetch_add(err, Ordering::Relaxed);
                Ok(())
            }));
        }
        for join in joins {
            join.join().expect("loadgen client thread panicked")?;
        }
        Ok(())
    })?;
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let stats = registrar.stats()?;
    if let Some(local) = local {
        drop(registrar.shutdown());
        local.shutdown();
    }

    let total = (clients * queries) as u64;
    let throughput = total as f64 / (wall_ns as f64 / 1e9);
    let mut samples = latency.into_inner().expect("latency lock");
    samples.sort_unstable();
    let quantile = |q: f64| -> i64 {
        match samples.len() {
            0 => 0,
            n => samples[(((q * n as f64).ceil() as usize).clamp(1, n)) - 1] as i64,
        }
    };
    let counters = stats.get("counters").cloned().unwrap_or(Json::Null);
    Ok(envelope(
        "serve-bench",
        vec![
            ("seed", Json::Int(seed as i64)),
            ("programs", Json::Int(programs as i64)),
            ("clients", Json::Int(clients as i64)),
            ("tenants", Json::Int(tenants as i64)),
            ("queries_per_client", Json::Int(queries as i64)),
            ("pipeline_depth", Json::Int(depth as i64)),
            ("total_queries", Json::Int(total as i64)),
            ("ok", Json::Int(ok_count.into_inner() as i64)),
            ("errors", Json::Int(err_count.into_inner() as i64)),
            ("wall_ms", Json::Float(wall_ns as f64 / 1e6)),
            ("throughput_qps", Json::Float(throughput)),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::Int(quantile(0.50))),
                    ("p90", Json::Int(quantile(0.90))),
                    ("p99", Json::Int(quantile(0.99))),
                    ("p999", Json::Int(quantile(0.999))),
                    (
                        "max",
                        Json::Int(samples.last().copied().unwrap_or(0) as i64),
                    ),
                ]),
            ),
            ("server", counters),
        ],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_classifies_and_extracts_ids() {
        assert!(response_ok(
            r#"{"schema":"awam/v1","kind":"analyze","ok":true,"id":12}"#
        ));
        assert!(!response_ok(
            r#"{"schema":"awam/v1","kind":"error","ok":false,"error":{"code":"over_budget","message":"x"},"id":3}"#
        ));
        assert_eq!(
            response_id(r#"{"schema":"awam/v1","kind":"analyze","ok":true,"id":12}"#),
            Some(12)
        );
        // Report text containing the raw bytes is impossible (quotes
        // are escaped inside JSON strings), but a missing id must not
        // panic.
        assert_eq!(response_id(r#"{"schema":"awam/v1","kind":"stats"}"#), None);
    }

    #[test]
    fn tiny_run_reports_every_query_ok() {
        let config = LoadgenConfig {
            programs: 3,
            clients: 2,
            queries: 5,
            tenants: 2,
            seed: 7,
            pipeline_depth: 3,
            ..LoadgenConfig::default()
        };
        let doc = run_loadgen(&config).expect("loadgen run");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("serve-bench"));
        assert_eq!(doc.get("total_queries").and_then(Json::as_i64), Some(10));
        assert_eq!(doc.get("ok").and_then(Json::as_i64), Some(10));
        assert_eq!(doc.get("errors").and_then(Json::as_i64), Some(0));
        let counters = doc.get("server").expect("server counters");
        assert_eq!(
            counters.get("requests").and_then(Json::as_i64),
            Some(3 + 10),
            "3 registers + 10 analyzes; the stats call is a control op"
        );
        assert_eq!(
            counters.get("responses_ok").and_then(Json::as_i64),
            Some(13)
        );
    }
}
