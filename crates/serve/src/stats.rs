//! Connection-local serve counters, merged only on snapshot.
//!
//! PR 8 kept one `Mutex<ServeStats>` and one `Mutex<Histogram>` for the
//! whole daemon, which every request had to take twice — at 16
//! concurrent connections those two locks (plus the cache and pool
//! locks) were the dominant cost of a request. This module inverts the
//! arrangement: every connection owns its own [`ConnStats`] block and
//! records into it with an uncontended lock (shared at most with the
//! worker-pool threads executing that connection's pipelined requests),
//! and a `stats` request walks the registry and *merges* — both
//! [`awam_obs::ServeStats`] and [`awam_obs::Histogram`] merge exactly,
//! so a snapshot is indistinguishable from the old global-lock
//! accounting.
//!
//! Lifecycle: a connection registers a [`ConnStatsHandle`] on accept;
//! when the connection (and every in-flight worker job borrowing it)
//! finishes, the handle's drop folds the block into the registry's
//! `retired` accumulator so completed traffic is never lost. The
//! registry holds weak references and prunes dead entries lazily.

use awam_obs::{Histogram, ServeStats};
use std::sync::{Arc, Mutex, Weak};

/// One connection's slice of the serve counters plus its latency
/// histogram (microseconds, analyze/batch requests only).
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Request/response/shed counters.
    pub serve: ServeStats,
    /// Client-visible latency of analyze/batch requests, microseconds.
    pub latency_us: Histogram,
}

impl ConnStats {
    fn merge(&mut self, other: &ConnStats) {
        self.serve.merge(&other.serve);
        self.latency_us.merge(&other.latency_us);
    }
}

struct HandleInner {
    stats: Mutex<ConnStats>,
    registry: Arc<RegistryInner>,
}

impl Drop for HandleInner {
    fn drop(&mut self) {
        let finished = self.stats.get_mut().expect("conn stats poisoned");
        self.registry
            .retired
            .lock()
            .expect("retired stats poisoned")
            .merge(finished);
    }
}

/// A live connection's registered stats block. Clone-cheap (`Arc`);
/// the last clone's drop retires the counters into the registry.
#[derive(Clone)]
pub struct ConnStatsHandle {
    inner: Arc<HandleInner>,
}

impl ConnStatsHandle {
    /// Record into the connection's block under its (uncontended) lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut ConnStats) -> R) -> R {
        f(&mut self.inner.stats.lock().expect("conn stats poisoned"))
    }
}

struct RegistryInner {
    live: Mutex<Vec<Weak<HandleInner>>>,
    retired: Mutex<ConnStats>,
}

/// The daemon-wide registry of per-connection stats blocks.
pub struct StatsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for StatsRegistry {
    fn default() -> StatsRegistry {
        StatsRegistry::new()
    }
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry {
            inner: Arc::new(RegistryInner {
                live: Mutex::new(Vec::new()),
                retired: Mutex::new(ConnStats::default()),
            }),
        }
    }

    /// Register a new connection's stats block. Called once per accept;
    /// never on the request path.
    pub fn register(&self) -> ConnStatsHandle {
        let handle = Arc::new(HandleInner {
            stats: Mutex::new(ConnStats::default()),
            registry: Arc::clone(&self.inner),
        });
        let mut live = self.inner.live.lock().expect("registry poisoned");
        // Prune retired connections while we hold the lock anyway, so
        // the vector tracks live connections rather than all-time
        // accepts.
        live.retain(|w| w.strong_count() > 0);
        live.push(Arc::downgrade(&handle));
        ConnStatsHandle { inner: handle }
    }

    /// Merge retired + live connection counters into one snapshot.
    pub fn snapshot(&self) -> ConnStats {
        let mut total = self
            .inner
            .retired
            .lock()
            .expect("retired stats poisoned")
            .clone();
        let live: Vec<Weak<HandleInner>> =
            self.inner.live.lock().expect("registry poisoned").clone();
        for weak in live {
            if let Some(handle) = weak.upgrade() {
                total.merge(&handle.stats.lock().expect("conn stats poisoned"));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_and_retired_counters_both_appear() {
        let registry = StatsRegistry::new();
        let a = registry.register();
        a.with(|s| {
            s.serve.requests += 3;
            s.latency_us.record(100);
        });
        {
            let b = registry.register();
            b.with(|s| {
                s.serve.requests += 2;
                s.serve.responses_ok += 2;
                s.latency_us.record(7);
            });
            // b drops here → retired.
        }
        let snap = registry.snapshot();
        assert_eq!(snap.serve.requests, 5, "live (3) + retired (2)");
        assert_eq!(snap.serve.responses_ok, 2);
        assert_eq!(snap.latency_us.count, 2);
        assert_eq!(snap.latency_us.max, 100);
        // Dropping the last live handle moves it to retired; totals are
        // unchanged.
        drop(a);
        let snap = registry.snapshot();
        assert_eq!(snap.serve.requests, 5);
        assert_eq!(snap.latency_us.count, 2);
    }

    #[test]
    fn clones_share_one_block() {
        let registry = StatsRegistry::new();
        let handle = registry.register();
        let clone = handle.clone();
        handle.with(|s| s.serve.requests += 1);
        clone.with(|s| s.serve.requests += 1);
        drop(handle);
        // Still live through the clone — and counted once, not twice.
        assert_eq!(registry.snapshot().serve.requests, 2);
        drop(clone);
        assert_eq!(registry.snapshot().serve.requests, 2);
    }
}
