//! A minimal blocking client for the daemon's line protocol, used by
//! the integration tests and the `awam loadgen` driver. The classic
//! surface is one request line out, one response line back
//! ([`Client::call_line`]); the pipelined surface splits that into
//! [`Client::send_line`] / [`Client::flush`] / [`Client::recv`] so a
//! caller can keep several id-tagged requests in flight on one
//! connection.

use awam_obs::Json;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// One connection to a running daemon.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    /// Reset-not-free response line buffer, reused across `recv` calls.
    line: String,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:4321"`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests are one small line each; without TCP_NODELAY the
        // Nagle/delayed-ACK interaction stalls every round-trip ~40ms.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: BufWriter::new(stream),
            reader,
            line: String::new(),
        })
    }

    /// Queue one request line without flushing — the pipelined half of
    /// the API. Call [`Client::flush`] before waiting on responses.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Push every queued request line onto the wire.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Read one raw response line (without the trailing newline) into
    /// the client's reusable buffer and return it.
    ///
    /// # Errors
    ///
    /// I/O failures or a server that hung up.
    pub fn recv_line(&mut self) -> io::Result<&str> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(self.line.trim_end())
    }

    /// Read and parse one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, a server that hung up, or a response line that is
    /// not valid JSON.
    pub fn recv(&mut self) -> io::Result<Json> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(self.line.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed response: {e}"),
            )
        })
    }

    /// Send one raw request line and read one response line.
    ///
    /// # Errors
    ///
    /// I/O failures, a server that hung up, or a response line that is
    /// not valid JSON.
    pub fn call_line(&mut self, line: &str) -> io::Result<Json> {
        self.send_line(line)?;
        self.flush()?;
        self.recv()
    }

    /// Send a request document (the `op` etc. already filled in).
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_line`].
    pub fn call(&mut self, request: &Json) -> io::Result<Json> {
        self.call_line(&request.emit())
    }

    /// Register `source` under `tenant`; the response carries the
    /// program's 16-hex fingerprint under `"program"`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_line`].
    pub fn register(&mut self, tenant: &str, source: &str) -> io::Result<Json> {
        self.call(&Json::obj(vec![
            ("op", Json::Str("register".to_owned())),
            ("tenant", Json::Str(tenant.to_owned())),
            ("program", Json::Str(source.to_owned())),
        ]))
    }

    /// Analyze `goal` with `entry` specs against a registered program
    /// hash.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_line`].
    pub fn analyze(
        &mut self,
        tenant: &str,
        program_hash: &str,
        goal: &str,
        entry: &[&str],
        reuse: bool,
    ) -> io::Result<Json> {
        self.call(&Json::obj(vec![
            ("op", Json::Str("analyze".to_owned())),
            ("tenant", Json::Str(tenant.to_owned())),
            ("program", Json::Str(program_hash.to_owned())),
            ("goal", Json::Str(goal.to_owned())),
            (
                "entry",
                Json::Arr(entry.iter().map(|s| Json::Str((*s).to_owned())).collect()),
            ),
            ("reuse", Json::Bool(reuse)),
        ]))
    }

    /// Replace the program registered under `program_hash` (16 hex
    /// digits) with `source`, migrating parked warm sessions; the
    /// response carries the new fingerprint under `"program"`.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_line`].
    pub fn update(&mut self, program_hash: &str, source: &str) -> io::Result<Json> {
        self.call(&Json::obj(vec![
            ("op", Json::Str("update".to_owned())),
            ("program", Json::Str(program_hash.to_owned())),
            ("source", Json::Str(source.to_owned())),
        ]))
    }

    /// Fetch the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_line`].
    pub fn stats(&mut self) -> io::Result<Json> {
        self.call(&Json::obj(vec![("op", Json::Str("stats".to_owned()))]))
    }

    /// Ask the daemon to stop accepting connections.
    ///
    /// # Errors
    ///
    /// Same as [`Client::call_line`].
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.call(&Json::obj(vec![("op", Json::Str("shutdown".to_owned()))]))
    }
}
