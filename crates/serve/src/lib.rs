//! `awam-serve`: the multi-tenant analysis daemon.
//!
//! The paper's compile-once/analyze-many architecture, turned into a
//! long-running service: a program is compiled to abstract-WAM code at
//! most once per distinct source text, cached behind an `Arc` and
//! shared by every connection, while each tenant keeps pools of warm
//! [`awam_core::Session`]s whose extension tables answer repeat goals
//! without re-running the fixpoint.
//!
//! * [`protocol`] — the line-delimited JSON wire format (requests,
//!   `awam/v1` response envelopes, error codes).
//! * [`cache`] — the LRU [`ProgramCache`] (byte-budgeted) and the
//!   per-`(tenant, program)` [`SessionPool`].
//! * [`server`] — [`Server`]/[`ServerHandle`], the accept loop, the
//!   load-shed gate, and per-request deadlines.
//! * [`client`] — a small blocking [`Client`] for tests and the
//!   `awam loadgen` driver.
//!
//! The daemon is std-only (the workspace builds offline): a
//! thread-per-connection `TcpListener` loop, `Mutex`-guarded caches,
//! and atomics for the load-shed gate.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{ProgramCache, SessionPool};
pub use client::Client;
pub use protocol::{parse_request, GoalSpec, ProgramRef, Request};
pub use server::{ServeConfig, Server, ServerHandle};
