//! `awam-serve`: the multi-tenant analysis daemon.
//!
//! The paper's compile-once/analyze-many architecture, turned into a
//! long-running service: a program is compiled to abstract-WAM code at
//! most once per distinct source text, cached behind an `Arc` and
//! shared by every connection, while each tenant keeps pools of warm
//! [`awam_core::Session`]s whose extension tables answer repeat goals
//! without re-running the fixpoint.
//!
//! * [`protocol`] — the line-delimited JSON wire format (requests,
//!   `awam/v1` response envelopes, error codes).
//! * [`cache`] — the sharded, byte-budgeted LRU [`ProgramCache`]
//!   (compile-once under concurrency) and the sharded
//!   per-`(tenant, program)` [`SessionPool`].
//! * [`stats`] — connection-local counters and latency histograms,
//!   merged only when a `stats` snapshot asks.
//! * [`server`] — [`Server`]/[`ServerHandle`], the accept loop, the
//!   pipelined per-connection executor, the load-shed gate, and
//!   per-request deadlines.
//! * [`client`] — a small blocking [`Client`] (with a pipelined
//!   send/recv surface) for tests and drivers.
//! * [`loadgen`] — the closed/open-loop load generator behind
//!   `awam loadgen` and the serve benchmark.
//!
//! The daemon is std-only (the workspace builds offline): a
//! thread-per-connection `TcpListener` loop, sharded `Mutex` caches,
//! and an atomic admission gate. No request touches a process-global
//! lock.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;

pub use cache::{ProgramCache, SessionPool};
pub use client::Client;
pub use loadgen::{run_loadgen, LoadgenConfig};
pub use protocol::{parse_request, GoalSpec, ProgramRef, Request};
pub use server::{ServeConfig, Server, ServerHandle};
pub use stats::{ConnStats, ConnStatsHandle, StatsRegistry};
