//! The compiled-program cache and the per-tenant warm-session pools.
//!
//! The paper's whole premise is *compile once, analyze many*; at
//! service scale that becomes these two layers:
//!
//! * [`ProgramCache`] — fingerprint → `Arc<Analyzer>`. Compilation
//!   happens at most once per distinct source text; every worker thread
//!   shares the same immutable compiled artifact through the `Arc`
//!   (the regorus `Engine`/`CompiledPolicy` pattern). The cache is
//!   LRU-evicted under a byte budget so a long-running daemon's memory
//!   is bounded no matter how many programs tenants register.
//! * [`SessionPool`] — `(tenant, fingerprint)` → parked
//!   [`SessionParts`]. A request checks a warm session out, runs its
//!   query (repeat/subsumed goals are answered from the memo table with
//!   zero fixpoint iterations), and checks it back in. Pools are
//!   per-tenant so one tenant's accumulated extension table never
//!   leaks into another tenant's answers.

use awam_core::{Analyzer, SessionParts};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached compiled program.
struct CacheSlot {
    analyzer: Arc<Analyzer>,
    /// Rough resident size estimate (code area + interner seed) used
    /// against the byte budget.
    approx_bytes: usize,
    /// LRU clock stamp of the last `get`/insert.
    last_used: u64,
}

/// Counters the cache maintains under its own lock (snapshotted into
/// the serve stats).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Lookups that found the program compiled.
    pub hits: u64,
    /// Compilations performed (lookup misses that inserted).
    pub misses: u64,
    /// Slots evicted to stay under the byte budget.
    pub evictions: u64,
}

struct CacheInner {
    slots: HashMap<u64, CacheSlot>,
    clock: u64,
    bytes: usize,
    counters: CacheCounters,
}

/// A thread-safe LRU cache of compiled [`Analyzer`]s keyed by program
/// fingerprint, bounded by an approximate byte budget.
pub struct ProgramCache {
    inner: Mutex<CacheInner>,
    byte_budget: usize,
}

impl ProgramCache {
    /// A cache that holds at most ~`byte_budget` bytes of compiled
    /// programs (estimates; a budget of 0 still holds the most recently
    /// inserted program, because evicting the artifact a request is
    /// about to use would defeat the cache's purpose).
    pub fn new(byte_budget: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(CacheInner {
                slots: HashMap::new(),
                clock: 0,
                bytes: 0,
                counters: CacheCounters::default(),
            }),
            byte_budget,
        }
    }

    /// Look up a compiled program by fingerprint, bumping its LRU stamp.
    pub fn get(&self, hash: u64) -> Option<Arc<Analyzer>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let found = inner.slots.get_mut(&hash).map(|slot| {
            slot.last_used = clock;
            Arc::clone(&slot.analyzer)
        });
        if found.is_some() {
            inner.counters.hits += 1;
        }
        found
    }

    /// Look up without touching the hit/miss counters (used by the
    /// analyze path after an implicit register already counted it).
    pub fn peek(&self, hash: u64) -> Option<Arc<Analyzer>> {
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.slots.get_mut(&hash).map(|slot| {
            slot.last_used = clock;
            Arc::clone(&slot.analyzer)
        })
    }

    /// Insert a freshly compiled program and evict least-recently-used
    /// slots until the estimate fits the budget again. Returns the
    /// fingerprints that were evicted (the server purges their session
    /// pools). Counts one miss.
    pub fn insert(&self, hash: u64, analyzer: Arc<Analyzer>, source_len: usize) -> Vec<u64> {
        let approx_bytes = approx_program_bytes(&analyzer, source_len);
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.counters.misses += 1;
        if let Some(old) = inner.slots.insert(
            hash,
            CacheSlot {
                analyzer,
                approx_bytes,
                last_used: clock,
            },
        ) {
            // Racing registration of the same source: keep the newer
            // artifact, reclaim the older estimate.
            inner.bytes -= old.approx_bytes;
        }
        inner.bytes += approx_bytes;
        let mut evicted = Vec::new();
        while inner.bytes > self.byte_budget && inner.slots.len() > 1 {
            let Some((&victim, _)) = inner
                .slots
                .iter()
                .filter(|(&h, _)| h != hash)
                .min_by_key(|(_, slot)| slot.last_used)
            else {
                break;
            };
            let slot = inner.slots.remove(&victim).expect("victim present");
            inner.bytes -= slot.approx_bytes;
            inner.counters.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Snapshot `(programs, bytes, byte_budget, counters)`.
    pub fn snapshot(&self) -> (usize, usize, usize, CacheCounters) {
        let inner = self.inner.lock().expect("cache lock poisoned");
        (
            inner.slots.len(),
            inner.bytes,
            self.byte_budget,
            inner.counters,
        )
    }
}

/// Estimate a compiled program's resident bytes: instruction stream,
/// predicate table, seed interner, and the source's symbol table. Only
/// has to be *monotone and stable* — eviction decisions need a
/// consistent yardstick, not an allocator audit.
fn approx_program_bytes(analyzer: &Analyzer, source_len: usize) -> usize {
    let program = analyzer.program();
    program.code_size() * 48 + program.predicates.len() * 96 + source_len + 1024
}

/// Counters the pool maintains under its own lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolCounters {
    /// Checkouts that found a parked warm session.
    pub hits: u64,
    /// Checkouts that had to start a fresh session.
    pub misses: u64,
}

/// Per-`(tenant, program)` pools of parked warm sessions.
pub struct SessionPool {
    inner: Mutex<PoolInner>,
    /// Upper bound of parked sessions per `(tenant, program)` key;
    /// check-ins beyond it are dropped (bounding memory under bursts).
    max_per_key: usize,
}

struct PoolInner {
    pools: HashMap<(String, u64), Vec<SessionParts>>,
    counters: PoolCounters,
}

impl SessionPool {
    /// A pool keeping at most `max_per_key` parked sessions per
    /// `(tenant, program)` key.
    pub fn new(max_per_key: usize) -> SessionPool {
        SessionPool {
            inner: Mutex::new(PoolInner {
                pools: HashMap::new(),
                counters: PoolCounters::default(),
            }),
            max_per_key,
        }
    }

    /// Check a warm session out for `tenant` × `hash`; `None` means the
    /// caller starts a fresh one.
    pub fn checkout(&self, tenant: &str, hash: u64) -> Option<SessionParts> {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        let parts = inner
            .pools
            .get_mut(&(tenant.to_owned(), hash))
            .and_then(Vec::pop);
        match parts {
            Some(p) => {
                inner.counters.hits += 1;
                Some(p)
            }
            None => {
                inner.counters.misses += 1;
                None
            }
        }
    }

    /// Park a session's parts for later reuse (dropped when the key's
    /// pool is full).
    pub fn checkin(&self, tenant: &str, hash: u64, parts: SessionParts) {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        let pool = inner.pools.entry((tenant.to_owned(), hash)).or_default();
        if pool.len() < self.max_per_key {
            pool.push(parts);
        }
    }

    /// Drop every parked session of an evicted program (all tenants):
    /// their tables hold pattern ids that resolve through the evicted
    /// analyzer's interner.
    pub fn purge_program(&self, hash: u64) {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        inner.pools.retain(|(_, h), _| *h != hash);
    }

    /// Snapshot `(parked sessions across all keys, counters)`.
    pub fn snapshot(&self) -> (usize, PoolCounters) {
        let inner = self.inner.lock().expect("pool lock poisoned");
        (inner.pools.values().map(Vec::len).sum(), inner.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awam_core::Session;
    use prolog_syntax::parse_program;

    fn compiled(source: &str) -> Arc<Analyzer> {
        let program = parse_program(source).expect("test source parses");
        Arc::new(Analyzer::compile(&program).expect("test source compiles"))
    }

    const APP: &str = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

    #[test]
    fn cache_compiles_once_and_counts() {
        let cache = ProgramCache::new(usize::MAX);
        let hash = awam_core::program_fingerprint(APP);
        assert!(cache.get(hash).is_none());
        cache.insert(hash, compiled(APP), APP.len());
        let a = cache.get(hash).expect("cached");
        let b = cache.get(hash).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "one compiled artifact, shared");
        let (programs, bytes, _, counters) = cache.snapshot();
        assert_eq!(programs, 1);
        assert!(bytes > 0);
        assert_eq!(
            (counters.hits, counters.misses, counters.evictions),
            (2, 1, 0)
        );
    }

    #[test]
    fn cache_evicts_lru_under_byte_budget() {
        // Budget below two programs: the second insert evicts the first.
        let one = compiled(APP);
        let budget = approx_program_bytes(&one, APP.len()) + 512;
        let cache = ProgramCache::new(budget);
        cache.insert(1, one, APP.len());
        let evicted = cache.insert(2, compiled("p(x)."), 6);
        assert_eq!(evicted, vec![1], "LRU slot evicted");
        assert!(cache.peek(1).is_none());
        assert!(cache.peek(2).is_some(), "newest insert is never evicted");
        let (_, _, _, counters) = cache.snapshot();
        assert_eq!(counters.evictions, 1);
    }

    #[test]
    fn zero_budget_still_serves_the_latest_program() {
        let cache = ProgramCache::new(0);
        cache.insert(1, compiled(APP), APP.len());
        assert!(cache.peek(1).is_some());
    }

    #[test]
    fn pool_parks_and_reuses_per_tenant() {
        let analyzer = compiled(APP);
        let pool = SessionPool::new(2);
        assert!(pool.checkout("t1", 1).is_none());

        // Grow a session, park it, and get the warm table back.
        let mut session = Session::new(&analyzer);
        session
            .analyze_query("app", &["glist", "glist", "var"])
            .expect("analysis runs");
        let memo = session.memo_len();
        assert!(memo > 0);
        pool.checkin("t1", 1, session.into_parts());

        assert!(pool.checkout("t2", 1).is_none(), "tenant isolation");
        let parts = pool.checkout("t1", 1).expect("parked session");
        assert_eq!(parts.memo_len(), memo);
        let mut warm = Session::resume(&analyzer, parts);
        let analysis = warm
            .analyze_query("app", &["glist", "glist", "var"])
            .expect("analysis runs");
        assert_eq!(analysis.iterations, 0, "warm hit from the parked table");

        let (_, counters) = pool.snapshot();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 2);
    }

    #[test]
    fn pool_bounds_and_purges() {
        let analyzer = compiled(APP);
        let pool = SessionPool::new(1);
        pool.checkin("t", 9, Session::new(&analyzer).into_parts());
        pool.checkin("t", 9, Session::new(&analyzer).into_parts());
        let (parked, _) = pool.snapshot();
        assert_eq!(parked, 1, "per-key bound drops the overflow");
        pool.purge_program(9);
        let (parked, _) = pool.snapshot();
        assert_eq!(parked, 0);
    }
}
