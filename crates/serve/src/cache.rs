//! The compiled-program cache and the per-tenant warm-session pools,
//! sharded so the serve hot path never serializes on a process-global
//! lock.
//!
//! The paper's whole premise is *compile once, analyze many*; at
//! service scale that becomes these two layers:
//!
//! * [`ProgramCache`] — fingerprint → `Arc<Analyzer>`. Compilation
//!   happens at most once per distinct source text; every worker thread
//!   shares the same immutable compiled artifact through the `Arc`
//!   (the regorus `Engine`/`CompiledPolicy` pattern). The cache is
//!   split into independently locked shards (fingerprint-addressed);
//!   each shard carries its own LRU clock and byte budget so a
//!   long-running daemon's memory stays bounded no matter how many
//!   programs tenants register, without any cross-shard coordination on
//!   the lookup path. A miss still compiles at most once under
//!   concurrency: the first requester installs a pending ticket in the
//!   shard and compiles outside the lock; concurrent requesters of the
//!   same fingerprint block on the ticket instead of duplicating the
//!   compile.
//! * [`SessionPool`] — `(tenant, fingerprint)` → parked
//!   [`SessionParts`], likewise sharded by a hash of the key. A request
//!   checks a warm session out, runs its query (repeat/subsumed goals
//!   are answered from the memo table with zero fixpoint iterations),
//!   and checks it back in. Pools are per-tenant so one tenant's
//!   accumulated extension table never leaks into another tenant's
//!   answers.

use awam_core::{Analyzer, SessionParts};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Default shard count for both caches: enough to make cross-request
/// lock collisions rare at realistic connection counts, small enough
/// that per-shard byte budgets stay meaningful.
pub const DEFAULT_SHARDS: usize = 8;

/// Finalizer-strength mixer (splitmix64) applied before taking shard
/// bits: program fingerprints are well distributed, but unit tests and
/// embedders may key with small sequential integers, and the shard
/// index must not degenerate for those.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, used to fold tenant names into the pool
/// shard key.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic compile failure, broadcast to every requester that
/// was waiting on the same in-flight compile.
#[derive(Clone, Debug)]
pub struct CompileFailed {
    /// Protocol error code (`parse_error` or `compile_error`).
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
}

/// One cached compiled program.
struct CacheSlot {
    analyzer: Arc<Analyzer>,
    /// Rough resident size estimate (code area + interner seed) used
    /// against the byte budget.
    approx_bytes: usize,
    /// LRU clock stamp of the last `get`/insert (per-shard clock).
    last_used: u64,
}

/// Counters the cache maintains under its shard locks (summed into the
/// serve stats on snapshot).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    /// Lookups that found the program compiled.
    pub hits: u64,
    /// Compilations performed (lookup misses that inserted).
    pub misses: u64,
    /// Slots evicted to stay under the byte budget.
    pub evictions: u64,
    /// Lookups that found a concurrent compile of the same fingerprint
    /// in flight and waited for it instead of compiling again.
    pub dedup_waits: u64,
}

impl CacheCounters {
    fn merge(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.dedup_waits += other.dedup_waits;
    }
}

/// The ticket concurrent requesters of an in-flight compile block on.
struct Pending {
    result: Mutex<Option<Result<Arc<Analyzer>, CompileFailed>>>,
    ready: Condvar,
}

struct ShardInner {
    slots: HashMap<u64, CacheSlot>,
    pending: HashMap<u64, Arc<Pending>>,
    clock: u64,
    bytes: usize,
    counters: CacheCounters,
}

struct Shard {
    inner: Mutex<ShardInner>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            inner: Mutex::new(ShardInner {
                slots: HashMap::new(),
                pending: HashMap::new(),
                clock: 0,
                bytes: 0,
                counters: CacheCounters::default(),
            }),
        }
    }
}

/// A sharded, thread-safe LRU cache of compiled [`Analyzer`]s keyed by
/// program fingerprint. Each shard is bounded by its slice of the byte
/// budget and locked independently, so concurrent requests for
/// different programs never contend.
pub struct ProgramCache {
    shards: Box<[Shard]>,
    /// Byte budget per shard (total budget split evenly).
    shard_budget: usize,
    mask: u64,
}

impl ProgramCache {
    /// A cache of [`DEFAULT_SHARDS`] shards holding at most
    /// ~`byte_budget` bytes of compiled programs overall (estimates; a
    /// budget of 0 still holds each shard's most recently inserted
    /// program, because evicting the artifact a request is about to use
    /// would defeat the cache's purpose).
    pub fn new(byte_budget: usize) -> ProgramCache {
        ProgramCache::with_shards(byte_budget, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two, minimum 1). The byte budget is split evenly across shards;
    /// LRU accounting is shard-local.
    pub fn with_shards(byte_budget: usize, shards: usize) -> ProgramCache {
        let n = shards.max(1).next_power_of_two();
        ProgramCache {
            shards: (0..n).map(|_| Shard::new()).collect(),
            shard_budget: byte_budget / n,
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a fingerprint lives in; exposed so tests can assert
    /// the key distribution.
    pub fn shard_of(&self, hash: u64) -> usize {
        (mix64(hash) & self.mask) as usize
    }

    fn shard(&self, hash: u64) -> &Shard {
        &self.shards[self.shard_of(hash)]
    }

    /// Look up a compiled program by fingerprint, bumping its LRU stamp.
    pub fn get(&self, hash: u64) -> Option<Arc<Analyzer>> {
        let mut inner = self.shard(hash).inner.lock().expect("cache shard poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let found = inner.slots.get_mut(&hash).map(|slot| {
            slot.last_used = clock;
            Arc::clone(&slot.analyzer)
        });
        if found.is_some() {
            inner.counters.hits += 1;
        }
        found
    }

    /// Look up without touching the hit/miss counters (used by paths
    /// that already counted the lookup).
    pub fn peek(&self, hash: u64) -> Option<Arc<Analyzer>> {
        let mut inner = self.shard(hash).inner.lock().expect("cache shard poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        inner.slots.get_mut(&hash).map(|slot| {
            slot.last_used = clock;
            Arc::clone(&slot.analyzer)
        })
    }

    /// Resolve `hash` to its compiled program, running `compile` on a
    /// miss — at most once per fingerprint under concurrency. Returns
    /// the analyzer, the fingerprints evicted to make room (the server
    /// purges their session pools), and whether this call compiled
    /// (`true` exactly when `compile` ran and succeeded).
    ///
    /// The first requester of an absent fingerprint installs a pending
    /// ticket and compiles *outside* the shard lock; concurrent
    /// requesters block on the ticket and share the result — including
    /// a deterministic failure, which is broadcast rather than
    /// recompiled.
    ///
    /// # Errors
    ///
    /// Whatever `compile` returned (or, for a waiter, the leader's
    /// failure).
    pub fn get_or_compile(
        &self,
        hash: u64,
        compile: impl FnOnce() -> Result<(Arc<Analyzer>, usize), CompileFailed>,
    ) -> Result<(Arc<Analyzer>, Vec<u64>, bool), CompileFailed> {
        let shard = self.shard(hash);
        let ticket = {
            let mut inner = shard.inner.lock().expect("cache shard poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(slot) = inner.slots.get_mut(&hash) {
                slot.last_used = clock;
                let found = Arc::clone(&slot.analyzer);
                inner.counters.hits += 1;
                return Ok((found, Vec::new(), false));
            }
            if let Some(pending) = inner.pending.get(&hash).map(Arc::clone) {
                inner.counters.dedup_waits += 1;
                Some(pending)
            } else {
                let pending = Arc::new(Pending {
                    result: Mutex::new(None),
                    ready: Condvar::new(),
                });
                inner.pending.insert(hash, pending);
                None
            }
        };

        if let Some(pending) = ticket {
            // Another request is compiling this fingerprint right now;
            // wait for its verdict instead of compiling again.
            let mut result = pending.result.lock().expect("pending lock poisoned");
            while result.is_none() {
                result = pending.ready.wait(result).expect("pending wait poisoned");
            }
            return match result.as_ref().expect("loop exits on Some") {
                Ok(analyzer) => {
                    // Count the dedup'd waiter as a hit: it found the
                    // program compiled (just barely).
                    let mut inner = shard.inner.lock().expect("cache shard poisoned");
                    inner.counters.hits += 1;
                    Ok((Arc::clone(analyzer), Vec::new(), false))
                }
                Err(failed) => Err(failed.clone()),
            };
        }

        // This request is the compile leader. Compile with no lock held.
        let compiled = compile();
        let mut inner = shard.inner.lock().expect("cache shard poisoned");
        let pending = inner
            .pending
            .remove(&hash)
            .expect("leader's pending ticket is present");
        match compiled {
            Ok((analyzer, approx_bytes)) => {
                inner.counters.misses += 1;
                let evicted = insert_locked(
                    &mut inner,
                    hash,
                    Arc::clone(&analyzer),
                    approx_bytes,
                    self.shard_budget,
                );
                *pending.result.lock().expect("pending lock poisoned") =
                    Some(Ok(Arc::clone(&analyzer)));
                pending.ready.notify_all();
                Ok((analyzer, evicted, true))
            }
            Err(failed) => {
                *pending.result.lock().expect("pending lock poisoned") = Some(Err(failed.clone()));
                pending.ready.notify_all();
                Err(failed)
            }
        }
    }

    /// Insert a freshly compiled program and evict least-recently-used
    /// slots of its shard until the estimate fits the shard budget
    /// again. Returns the fingerprints that were evicted (the server
    /// purges their session pools). Counts one miss.
    pub fn insert(&self, hash: u64, analyzer: Arc<Analyzer>, source_len: usize) -> Vec<u64> {
        let approx_bytes = approx_program_bytes(&analyzer, source_len);
        let mut inner = self.shard(hash).inner.lock().expect("cache shard poisoned");
        inner.counters.misses += 1;
        insert_locked(&mut inner, hash, analyzer, approx_bytes, self.shard_budget)
    }

    /// Snapshot `(programs, bytes, total byte budget, summed counters)`
    /// across all shards.
    pub fn snapshot(&self) -> (usize, usize, usize, CacheCounters) {
        let mut programs = 0;
        let mut bytes = 0;
        let mut counters = CacheCounters::default();
        for shard in self.shards.iter() {
            let inner = shard.inner.lock().expect("cache shard poisoned");
            programs += inner.slots.len();
            bytes += inner.bytes;
            counters.merge(&inner.counters);
        }
        (
            programs,
            bytes,
            self.shard_budget * self.shards.len(),
            counters,
        )
    }
}

/// Shard-local insert + LRU eviction; the shard lock is already held.
fn insert_locked(
    inner: &mut ShardInner,
    hash: u64,
    analyzer: Arc<Analyzer>,
    approx_bytes: usize,
    shard_budget: usize,
) -> Vec<u64> {
    inner.clock += 1;
    let clock = inner.clock;
    if let Some(old) = inner.slots.insert(
        hash,
        CacheSlot {
            analyzer,
            approx_bytes,
            last_used: clock,
        },
    ) {
        // Racing registration of the same source: keep the newer
        // artifact, reclaim the older estimate.
        inner.bytes -= old.approx_bytes;
    }
    inner.bytes += approx_bytes;
    let mut evicted = Vec::new();
    while inner.bytes > shard_budget && inner.slots.len() > 1 {
        let Some((&victim, _)) = inner
            .slots
            .iter()
            .filter(|(&h, _)| h != hash)
            .min_by_key(|(_, slot)| slot.last_used)
        else {
            break;
        };
        let slot = inner.slots.remove(&victim).expect("victim present");
        inner.bytes -= slot.approx_bytes;
        inner.counters.evictions += 1;
        evicted.push(victim);
    }
    evicted
}

/// Estimate a compiled program's resident bytes: instruction stream,
/// predicate table, seed interner, and the source's symbol table. Only
/// has to be *monotone and stable* — eviction decisions need a
/// consistent yardstick, not an allocator audit.
pub(crate) fn approx_program_bytes(analyzer: &Analyzer, source_len: usize) -> usize {
    let program = analyzer.program();
    program.code_size() * 48 + program.predicates.len() * 96 + source_len + 1024
}

/// Counters the pool maintains under its shard locks.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolCounters {
    /// Checkouts that found a parked warm session.
    pub hits: u64,
    /// Checkouts that had to start a fresh session.
    pub misses: u64,
}

struct PoolShard {
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    pools: HashMap<(String, u64), Vec<SessionParts>>,
    counters: PoolCounters,
}

/// Per-`(tenant, program)` pools of parked warm sessions, sharded by a
/// hash of the key so concurrent checkouts for different tenants or
/// programs never contend on one lock.
pub struct SessionPool {
    shards: Box<[PoolShard]>,
    /// Upper bound of parked sessions per `(tenant, program)` key;
    /// check-ins beyond it are dropped (bounding memory under bursts).
    max_per_key: usize,
    mask: u64,
}

impl SessionPool {
    /// A pool of [`DEFAULT_SHARDS`] shards keeping at most
    /// `max_per_key` parked sessions per `(tenant, program)` key.
    pub fn new(max_per_key: usize) -> SessionPool {
        SessionPool::with_shards(max_per_key, DEFAULT_SHARDS)
    }

    /// A pool with an explicit shard count (rounded up to a power of
    /// two, minimum 1).
    pub fn with_shards(max_per_key: usize, shards: usize) -> SessionPool {
        let n = shards.max(1).next_power_of_two();
        SessionPool {
            shards: (0..n)
                .map(|_| PoolShard {
                    inner: Mutex::new(PoolInner {
                        pools: HashMap::new(),
                        counters: PoolCounters::default(),
                    }),
                })
                .collect(),
            max_per_key,
            mask: (n - 1) as u64,
        }
    }

    /// The shard a `(tenant, program)` key lives in; exposed so tests
    /// can assert the key distribution.
    pub fn shard_of(&self, tenant: &str, hash: u64) -> usize {
        (mix64(fnv1a(tenant.as_bytes()) ^ mix64(hash)) & self.mask) as usize
    }

    fn shard(&self, tenant: &str, hash: u64) -> &PoolShard {
        &self.shards[self.shard_of(tenant, hash)]
    }

    /// Check a warm session out for `tenant` × `hash`; `None` means the
    /// caller starts a fresh one.
    pub fn checkout(&self, tenant: &str, hash: u64) -> Option<SessionParts> {
        let mut inner = self
            .shard(tenant, hash)
            .inner
            .lock()
            .expect("pool shard poisoned");
        // Borrow-friendly lookup without cloning the tenant string on
        // the (common) hit path.
        let parts = inner
            .pools
            .get_mut(&(tenant.to_owned(), hash))
            .and_then(Vec::pop);
        match parts {
            Some(p) => {
                inner.counters.hits += 1;
                Some(p)
            }
            None => {
                inner.counters.misses += 1;
                None
            }
        }
    }

    /// Park a session's parts for later reuse (dropped when the key's
    /// pool is full).
    pub fn checkin(&self, tenant: &str, hash: u64, parts: SessionParts) {
        let mut inner = self
            .shard(tenant, hash)
            .inner
            .lock()
            .expect("pool shard poisoned");
        let pool = inner.pools.entry((tenant.to_owned(), hash)).or_default();
        if pool.len() < self.max_per_key {
            pool.push(parts);
        }
    }

    /// Drop every parked session of an evicted program (all tenants,
    /// all shards): their tables hold pattern ids that resolve through
    /// the evicted analyzer's interner.
    pub fn purge_program(&self, hash: u64) {
        for shard in self.shards.iter() {
            let mut inner = shard.inner.lock().expect("pool shard poisoned");
            inner.pools.retain(|(_, h), _| *h != hash);
        }
    }

    /// Drain every parked session of a program across all tenants and
    /// shards, returning each with the tenant it was parked under. The
    /// `update` op uses this to migrate warm sessions onto the edited
    /// program's fingerprint instead of discarding them.
    pub fn take_program(&self, hash: u64) -> Vec<(String, SessionParts)> {
        let mut taken = Vec::new();
        for shard in self.shards.iter() {
            let mut inner = shard.inner.lock().expect("pool shard poisoned");
            let keys: Vec<(String, u64)> = inner
                .pools
                .keys()
                .filter(|(_, h)| *h == hash)
                .cloned()
                .collect();
            for key in keys {
                if let Some(parked) = inner.pools.remove(&key) {
                    let (tenant, _) = key;
                    taken.extend(parked.into_iter().map(|p| (tenant.clone(), p)));
                }
            }
        }
        taken
    }

    /// Snapshot `(parked sessions across all keys, summed counters)`.
    pub fn snapshot(&self) -> (usize, PoolCounters) {
        let mut parked = 0;
        let mut counters = PoolCounters::default();
        for shard in self.shards.iter() {
            let inner = shard.inner.lock().expect("pool shard poisoned");
            parked += inner.pools.values().map(Vec::len).sum::<usize>();
            counters.hits += inner.counters.hits;
            counters.misses += inner.counters.misses;
        }
        (parked, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awam_core::Session;
    use prolog_syntax::parse_program;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn compiled(source: &str) -> Arc<Analyzer> {
        let program = parse_program(source).expect("test source parses");
        Arc::new(Analyzer::compile(&program).expect("test source compiles"))
    }

    const APP: &str = "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).";

    #[test]
    fn cache_compiles_once_and_counts() {
        let cache = ProgramCache::new(usize::MAX);
        let hash = awam_core::program_fingerprint(APP);
        assert!(cache.get(hash).is_none());
        cache.insert(hash, compiled(APP), APP.len());
        let a = cache.get(hash).expect("cached");
        let b = cache.get(hash).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "one compiled artifact, shared");
        let (programs, bytes, _, counters) = cache.snapshot();
        assert_eq!(programs, 1);
        assert!(bytes > 0);
        assert_eq!(
            (counters.hits, counters.misses, counters.evictions),
            (2, 1, 0)
        );
    }

    #[test]
    fn cache_evicts_lru_under_byte_budget() {
        // Single shard so the second insert lands on the same byte
        // budget as the first; budget below two programs means the
        // second insert evicts the first.
        let one = compiled(APP);
        let budget = approx_program_bytes(&one, APP.len()) + 512;
        let cache = ProgramCache::with_shards(budget, 1);
        cache.insert(1, one, APP.len());
        let evicted = cache.insert(2, compiled("p(x)."), 6);
        assert_eq!(evicted, vec![1], "LRU slot evicted");
        assert!(cache.peek(1).is_none());
        assert!(cache.peek(2).is_some(), "newest insert is never evicted");
        let (_, _, _, counters) = cache.snapshot();
        assert_eq!(counters.evictions, 1);
    }

    #[test]
    fn zero_budget_still_serves_the_latest_program() {
        let cache = ProgramCache::new(0);
        cache.insert(1, compiled(APP), APP.len());
        assert!(cache.peek(1).is_some());
    }

    #[test]
    fn get_or_compile_dedupes_concurrent_compiles() {
        // 8 threads race get_or_compile on one fingerprint; the compile
        // closure sleeps so the waiters genuinely overlap the leader.
        let cache = ProgramCache::new(usize::MAX);
        let compiles = AtomicUsize::new(0);
        let hash = awam_core::program_fingerprint(APP);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        cache
                            .get_or_compile(hash, || {
                                compiles.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                let a = compiled(APP);
                                let bytes = approx_program_bytes(&a, APP.len());
                                Ok((a, bytes))
                            })
                            .expect("compiles")
                            .0
                    })
                })
                .collect();
            let artifacts: Vec<Arc<Analyzer>> = handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect();
            for other in &artifacts[1..] {
                assert!(
                    Arc::ptr_eq(&artifacts[0], other),
                    "every racer shares the single compiled artifact"
                );
            }
        });
        assert_eq!(compiles.load(Ordering::SeqCst), 1, "compiled exactly once");
        let (_, _, _, counters) = cache.snapshot();
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.hits, 7, "each non-leader counts one hit");
        assert!(
            counters.dedup_waits <= 7,
            "waiters that overlapped the compile counted a dedup wait"
        );
    }

    #[test]
    fn get_or_compile_broadcasts_failure() {
        let cache = ProgramCache::new(usize::MAX);
        let err = cache
            .get_or_compile(99, || {
                Err(CompileFailed {
                    code: "compile_error",
                    message: "nope".to_owned(),
                })
            })
            .expect_err("leader failure propagates");
        assert_eq!(err.code, "compile_error");
        // The failed fingerprint is not cached; a later attempt can
        // compile successfully.
        let (analyzer, _, compiled_now) = cache
            .get_or_compile(99, || {
                let a = compiled(APP);
                let bytes = approx_program_bytes(&a, APP.len());
                Ok((a, bytes))
            })
            .expect("second attempt succeeds");
        assert!(compiled_now);
        assert!(Arc::ptr_eq(&analyzer, &cache.peek(99).expect("cached")));
    }

    #[test]
    fn cache_shard_keys_spread() {
        // Sequential fingerprints (the worst realistic case: tests and
        // embedders keying 1, 2, 3, …) must still spread across shards.
        let cache = ProgramCache::with_shards(usize::MAX, 8);
        let mut per_shard = vec![0usize; cache.shard_count()];
        for hash in 0..4096u64 {
            per_shard[cache.shard_of(hash)] += 1;
        }
        let (min, max) = (
            per_shard.iter().copied().min().expect("shards"),
            per_shard.iter().copied().max().expect("shards"),
        );
        assert!(min > 0, "no empty shard: {per_shard:?}");
        assert!(
            max < min * 2,
            "sequential keys spread within 2x: {per_shard:?}"
        );
    }

    #[test]
    fn pool_shard_keys_spread() {
        let pool = SessionPool::with_shards(4, 8);
        let mut per_shard = vec![0usize; 8];
        for t in 0..64 {
            let tenant = format!("tenant{t}");
            for hash in 0..64u64 {
                per_shard[pool.shard_of(&tenant, hash)] += 1;
            }
        }
        let (min, max) = (
            per_shard.iter().copied().min().expect("shards"),
            per_shard.iter().copied().max().expect("shards"),
        );
        assert!(min > 0, "no empty shard: {per_shard:?}");
        assert!(
            max < min * 2,
            "(tenant, program) keys spread within 2x: {per_shard:?}"
        );
        // Same tenant, same program → same shard (stability).
        assert_eq!(pool.shard_of("a", 7), pool.shard_of("a", 7));
    }

    #[test]
    fn pool_parks_and_reuses_per_tenant() {
        let analyzer = compiled(APP);
        let pool = SessionPool::new(2);
        assert!(pool.checkout("t1", 1).is_none());

        // Grow a session, park it, and get the warm table back.
        let mut session = Session::new(&analyzer);
        session
            .analyze_query("app", &["glist", "glist", "var"])
            .expect("analysis runs");
        let memo = session.memo_len();
        assert!(memo > 0);
        pool.checkin("t1", 1, session.into_parts());

        assert!(pool.checkout("t2", 1).is_none(), "tenant isolation");
        let parts = pool.checkout("t1", 1).expect("parked session");
        assert_eq!(parts.memo_len(), memo);
        let mut warm = Session::resume(&analyzer, parts);
        let analysis = warm
            .analyze_query("app", &["glist", "glist", "var"])
            .expect("analysis runs");
        assert_eq!(analysis.iterations, 0, "warm hit from the parked table");

        let (_, counters) = pool.snapshot();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 2);
    }

    #[test]
    fn pool_bounds_and_purges() {
        let analyzer = compiled(APP);
        let pool = SessionPool::new(1);
        pool.checkin("t", 9, Session::new(&analyzer).into_parts());
        pool.checkin("t", 9, Session::new(&analyzer).into_parts());
        let (parked, _) = pool.snapshot();
        assert_eq!(parked, 1, "per-key bound drops the overflow");
        // Park the same program under many tenants so the purge has to
        // sweep several shards.
        for t in 0..16 {
            pool.checkin(&format!("t{t}"), 9, Session::new(&analyzer).into_parts());
        }
        pool.purge_program(9);
        let (parked, _) = pool.snapshot();
        assert_eq!(parked, 0, "purge sweeps every shard");
    }

    #[test]
    fn take_program_drains_every_tenant_and_spares_others() {
        let analyzer = compiled(APP);
        let pool = SessionPool::new(4);
        for t in 0..8 {
            pool.checkin(&format!("t{t}"), 9, Session::new(&analyzer).into_parts());
        }
        pool.checkin("t0", 10, Session::new(&analyzer).into_parts());
        let taken = pool.take_program(9);
        assert_eq!(taken.len(), 8, "every shard's parked sessions drained");
        let mut tenants: Vec<&str> = taken.iter().map(|(t, _)| t.as_str()).collect();
        tenants.sort_unstable();
        tenants.dedup();
        assert_eq!(tenants.len(), 8, "tenant names preserved");
        let (parked, _) = pool.snapshot();
        assert_eq!(parked, 1, "other programs' sessions untouched");
    }
}
