//! Property tests: `parse ∘ print` is the identity on randomly generated
//! terms, and printing is stable (printing the reparse of a print equals the
//! print). Terms come from a deterministic inline PRNG (the workspace
//! builds offline, so no proptest).

use prolog_syntax::{parse_term, term_to_string, Interner, Term, VarId};

/// xorshift64* — deterministic term generator driver.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random atom name that does not need quoting: `[a-z][a-z0-9_]{0,6}`,
/// avoiding reserved words that are operators.
fn plain_atom_name(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    loop {
        let mut s = String::new();
        s.push(FIRST[rng.below(FIRST.len() as u64) as usize] as char);
        for _ in 0..rng.below(7) {
            s.push(REST[rng.below(REST.len() as u64) as usize] as char);
        }
        if !matches!(s.as_str(), "is" | "mod" | "rem" | "xor" | "div") {
            return s;
        }
    }
}

/// An atom name that requires quoting: `[A-Z ][a-zA-Z ]{0,6}`.
fn quoted_atom_name(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ ";
    let mut s = String::new();
    s.push(FIRST[rng.below(FIRST.len() as u64) as usize] as char);
    for _ in 0..rng.below(7) {
        s.push(REST[rng.below(REST.len() as u64) as usize] as char);
    }
    s
}

#[derive(Clone, Debug)]
enum GenTerm {
    Var(u32),
    Int(i64),
    Atom(String),
    Struct(String, Vec<GenTerm>),
    List(Vec<GenTerm>, Option<Box<GenTerm>>),
}

fn gen_term(rng: &mut Rng, depth: usize) -> GenTerm {
    // Compound terms with probability 1/3 below the depth cap; the same
    // leaf mix as before (Var, Int, plain/quoted Atom).
    if depth > 0 && rng.below(3) == 0 {
        if rng.below(2) == 0 {
            let f = plain_atom_name(rng);
            let n = 1 + rng.below(3) as usize;
            let args = (0..n).map(|_| gen_term(rng, depth - 1)).collect();
            GenTerm::Struct(f, args)
        } else {
            let n = rng.below(4) as usize;
            let items = (0..n).map(|_| gen_term(rng, depth - 1)).collect();
            let tail = if rng.below(2) == 0 {
                Some(Box::new(gen_term(rng, depth - 1)))
            } else {
                None
            };
            GenTerm::List(items, tail)
        }
    } else {
        match rng.below(4) {
            0 => GenTerm::Var(rng.below(4) as u32),
            1 => GenTerm::Int(rng.next() as i32 as i64),
            2 => GenTerm::Atom(plain_atom_name(rng)),
            _ => GenTerm::Atom(quoted_atom_name(rng)),
        }
    }
}

fn build(gen: &GenTerm, interner: &mut Interner) -> Term {
    match gen {
        GenTerm::Var(v) => Term::Var(VarId(*v)),
        GenTerm::Int(i) => Term::Int(*i),
        GenTerm::Atom(a) => Term::Atom(interner.intern(a)),
        GenTerm::Struct(f, args) => {
            let f = interner.intern(f);
            let args = args.iter().map(|a| build(a, interner)).collect();
            Term::Struct(f, args)
        }
        GenTerm::List(items, tail) => {
            let tail_term = match tail {
                Some(t) => build(t, interner),
                None => Term::nil(interner),
            };
            let mut term = tail_term;
            for item in items.iter().rev() {
                let item = build(item, interner);
                term = Term::cons(interner, item, term);
            }
            term
        }
    }
}

/// Rename interner symbols so that terms from different interners compare.
fn canonical(term: &Term, interner: &Interner) -> String {
    match term {
        Term::Var(v) => format!("V{}", v.0),
        Term::Int(i) => format!("I{i}"),
        Term::Atom(a) => format!("A<{}>", interner.resolve(*a)),
        Term::Struct(f, args) => {
            let args: Vec<String> = args.iter().map(|a| canonical(a, interner)).collect();
            format!("S<{}>({})", interner.resolve(*f), args.join(","))
        }
    }
}

#[test]
fn print_parse_roundtrip() {
    let mut rng = Rng::new(0x0f2e_7a31);
    for case in 0..256 {
        let gen = gen_term(&mut rng, 4);
        let mut interner = Interner::new();
        let term = build(&gen, &mut interner);
        let names: Vec<String> = (0..4).map(|i| format!("X{i}")).collect();
        let printed = term_to_string(&term, &interner, &names);
        let (reparsed, interner2, names2) = parse_term(&printed)
            .unwrap_or_else(|e| panic!("case {case}: failed to reparse {printed:?}: {e}"));
        // Compare canonically: same shape, atoms by text. Variables may be
        // renumbered by first occurrence, so compare via a reprint.
        let reprinted = term_to_string(&reparsed, &interner2, &names2);
        assert_eq!(
            &printed, &reprinted,
            "case {case}: print not stable for {printed}"
        );
        // And ground terms must be structurally identical.
        if term.is_ground() {
            assert_eq!(
                canonical(&term, &interner),
                canonical(&reparsed, &interner2),
                "case {case}"
            );
        }
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut rng = Rng::new(0x0f2e_7a32);
    // Printable-ish ASCII plus a few multi-byte chars, like \PC did.
    const CHARS: &[char] = &[
        'a', 'z', 'A', 'Z', '0', '9', '_', ' ', '\t', '(', ')', '[', ']', '|', ',', '.', ':', '-',
        '+', '*', '/', '\\', '=', '<', '>', '!', ';', '\'', '"', '%', '{', '}', 'é', 'λ', '→',
    ];
    for _ in 0..256 {
        let n = rng.below(60) as usize;
        let src: String = (0..n)
            .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize])
            .collect();
        let _ = prolog_syntax::parse_program(&src);
    }
}

#[test]
fn lexer_never_panics() {
    let mut rng = Rng::new(0x0f2e_7a33);
    for _ in 0..256 {
        let n = rng.below(60) as usize;
        let src: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
        if let Ok(text) = std::str::from_utf8(&src) {
            let _ = prolog_syntax::Lexer::new(text).tokenize();
        }
    }
}
