//! Property tests: `parse ∘ print` is the identity on randomly generated
//! terms, and printing is stable (printing the reparse of a print equals the
//! print).

use proptest::prelude::*;
use prolog_syntax::{parse_term, term_to_string, Interner, Term, VarId};

/// Strategy for random atom names that do not need quoting.
fn plain_atom_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid reserved words that are operators", |s| {
        !matches!(s.as_str(), "is" | "mod" | "rem" | "xor" | "div")
    })
}

/// Strategy for atom names that require quoting.
fn quoted_atom_name() -> impl Strategy<Value = String> {
    "[A-Z ][a-zA-Z ]{0,6}".prop_map(|s| s)
}

#[derive(Clone, Debug)]
enum GenTerm {
    Var(u32),
    Int(i64),
    Atom(String),
    Struct(String, Vec<GenTerm>),
    List(Vec<GenTerm>, Option<Box<GenTerm>>),
}

fn gen_term() -> impl Strategy<Value = GenTerm> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(GenTerm::Var),
        any::<i32>().prop_map(|i| GenTerm::Int(i as i64)),
        plain_atom_name().prop_map(GenTerm::Atom),
        quoted_atom_name().prop_map(GenTerm::Atom),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (plain_atom_name(), prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(f, args)| GenTerm::Struct(f, args)),
            (
                prop::collection::vec(inner.clone(), 0..4),
                prop::option::of(inner.clone().prop_map(Box::new))
            )
                .prop_map(|(items, tail)| GenTerm::List(items, tail)),
        ]
    })
}

fn build(gen: &GenTerm, interner: &mut Interner) -> Term {
    match gen {
        GenTerm::Var(v) => Term::Var(VarId(*v)),
        GenTerm::Int(i) => Term::Int(*i),
        GenTerm::Atom(a) => Term::Atom(interner.intern(a)),
        GenTerm::Struct(f, args) => {
            let f = interner.intern(f);
            let args = args.iter().map(|a| build(a, interner)).collect();
            Term::Struct(f, args)
        }
        GenTerm::List(items, tail) => {
            let tail_term = match tail {
                Some(t) => build(t, interner),
                None => Term::nil(interner),
            };
            let mut term = tail_term;
            for item in items.iter().rev() {
                let item = build(item, interner);
                term = Term::cons(interner, item, term);
            }
            term
        }
    }
}

/// Rename interner symbols so that terms from different interners compare.
fn canonical(term: &Term, interner: &Interner) -> String {
    match term {
        Term::Var(v) => format!("V{}", v.0),
        Term::Int(i) => format!("I{i}"),
        Term::Atom(a) => format!("A<{}>", interner.resolve(*a)),
        Term::Struct(f, args) => {
            let args: Vec<String> = args.iter().map(|a| canonical(a, interner)).collect();
            format!("S<{}>({})", interner.resolve(*f), args.join(","))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(gen in gen_term()) {
        let mut interner = Interner::new();
        let term = build(&gen, &mut interner);
        let names: Vec<String> = (0..4).map(|i| format!("X{i}")).collect();
        let printed = term_to_string(&term, &interner, &names);
        let (reparsed, interner2, names2) = parse_term(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        // Compare canonically: same shape, atoms by text. Variables may be
        // renumbered by first occurrence, so compare via a reprint.
        let reprinted = term_to_string(&reparsed, &interner2, &names2);
        prop_assert_eq!(&printed, &reprinted, "print not stable for {}", printed);
        // And ground terms must be structurally identical.
        if term.is_ground() {
            prop_assert_eq!(
                canonical(&term, &interner),
                canonical(&reparsed, &interner2)
            );
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC{0,60}") {
        let _ = prolog_syntax::parse_program(&src);
    }

    #[test]
    fn lexer_never_panics(src in prop::collection::vec(any::<u8>(), 0..60)) {
        if let Ok(text) = std::str::from_utf8(&src) {
            let _ = prolog_syntax::Lexer::new(text).tokenize();
        }
    }
}
