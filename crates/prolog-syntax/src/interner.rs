//! String interning for atoms and functor names.
//!
//! Every atom and functor name in a [`crate::Program`] is interned into a
//! [`Symbol`] — a cheap, `Copy`, hashable handle. The [`Interner`] owns the
//! backing strings and pre-interns the handful of atoms the rest of the
//! workspace needs to recognize structurally (`[]`, `'.'`, `','`, …).

use std::collections::HashMap;
use std::fmt;

/// An interned atom or functor name.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; comparing symbols from different interners is a logic error (but
/// not UB — they are plain indices).
///
/// # Examples
///
/// ```
/// use prolog_syntax::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("foo");
/// let b = i.intern("foo");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "foo");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a raw index previously obtained via
    /// [`Symbol::index`].
    pub fn from_index(index: usize) -> Self {
        Symbol(index as u32)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

macro_rules! well_known {
    ($($method:ident => $text:expr, $doc:expr;)*) => {
        /// Accessors for atoms that are pre-interned by [`Interner::new`].
        impl Interner {
            $(
                #[doc = $doc]
                pub fn $method(&self) -> Symbol {
                    self.well_known[WellKnown::$method as usize]
                }
            )*
        }

        #[allow(non_camel_case_types)]
        #[derive(Clone, Copy)]
        enum WellKnown { $($method),* }

        const WELL_KNOWN_TEXTS: &[&str] = &[$($text),*];
    };
}

well_known! {
    nil => "[]", "The empty-list atom `[]`.";
    dot => ".", "The list constructor functor `'.'`.";
    comma => ",", "The conjunction functor `','`.";
    semicolon => ";", "The disjunction functor `';'`.";
    arrow => "->", "The if-then functor `'->'`.";
    neck => ":-", "The clause-neck functor `':-'`.";
    true_ => "true", "The atom `true`.";
    fail => "fail", "The atom `fail`.";
    cut => "!", "The cut atom `!`.";
    not => "\\+", "The negation-as-failure functor `'\\\\+'`.";
    curly => "{}", "The curly-braces atom `{}`.";
    question => "?-", "The query functor `'?-'`.";
    ellipsis => "...", "The atom `'...'` marking a cyclic-term cut during reification.";
}

/// Interns strings into [`Symbol`]s.
///
/// See the [module documentation](self) for an overview.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
    well_known: Vec<Symbol>,
}

impl Interner {
    /// Create an interner with the well-known atoms pre-interned.
    pub fn new() -> Self {
        let mut interner = Interner {
            names: Vec::new(),
            map: HashMap::new(),
            well_known: Vec::new(),
        };
        for text in WELL_KNOWN_TEXTS {
            let symbol = interner.intern(text);
            interner.well_known.push(symbol);
        }
        interner
    }

    /// Intern `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&symbol) = self.map.get(name) {
            return symbol;
        }
        let symbol = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), symbol);
        symbol
    }

    /// Look up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The text of `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` did not come from this interner.
    pub fn resolve(&self, symbol: Symbol) -> &str {
        &self.names[symbol.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no strings have been interned (never true for an interner
    /// made by [`Interner::new`], which pre-interns well-known atoms).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "hello");
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_ne!(a, b);
    }

    #[test]
    fn well_known_atoms_are_preinterned() {
        let i = Interner::new();
        assert_eq!(i.resolve(i.nil()), "[]");
        assert_eq!(i.resolve(i.dot()), ".");
        assert_eq!(i.resolve(i.comma()), ",");
        assert_eq!(i.resolve(i.neck()), ":-");
        assert_eq!(i.resolve(i.cut()), "!");
        assert_eq!(i.resolve(i.not()), "\\+");
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert!(i.lookup("never_seen").is_none());
        assert!(i.lookup("[]").is_some());
    }

    #[test]
    fn symbol_index_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("roundtrip");
        assert_eq!(Symbol::from_index(s.index()), s);
    }
}
