//! Tokenizer for Prolog source text.
//!
//! Produces a flat vector of [`Token`]s. Each token records whether layout
//! (whitespace or a comment) preceded it, which the parser uses to
//! distinguish `f(X)` (compound term) from `f (X)` (atom applied to a
//! parenthesized term — an error in most contexts).

use std::fmt;

/// The kind of a lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An atom: unquoted (`foo`), quoted (`'Foo bar'`), symbolic (`=..`),
    /// or a solo character (`!`, `;`).
    Atom(String),
    /// A variable name (starts with an uppercase letter or `_`).
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A double-quoted string, to be read as a list of character codes.
    Str(String),
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// `,`
    Comma,
    /// `|`
    Bar,
    /// End-of-clause `.` (a dot followed by layout or end of input).
    End,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Atom(a) => write!(f, "atom `{a}`"),
            TokenKind::Var(v) => write!(f, "variable `{v}`"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::OpenParen => write!(f, "`(`"),
            TokenKind::CloseParen => write!(f, "`)`"),
            TokenKind::OpenBracket => write!(f, "`[`"),
            TokenKind::CloseBracket => write!(f, "`]`"),
            TokenKind::OpenBrace => write!(f, "`{{`"),
            TokenKind::CloseBrace => write!(f, "`}}`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Bar => write!(f, "`|`"),
            TokenKind::End => write!(f, "`.`"),
        }
    }
}

/// A token with position information.
#[derive(Clone, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line of the first character.
    pub line: u32,
    /// Whether whitespace or a comment immediately preceded this token.
    pub layout_before: bool,
}

/// An error produced while tokenizing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line where the error occurred.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Characters that glue together into symbolic atoms (`=..`, `\+`, `->`).
fn is_symbol_char(c: char) -> bool {
    matches!(
        c,
        '+' | '-'
            | '*'
            | '/'
            | '\\'
            | '^'
            | '<'
            | '>'
            | '='
            | '~'
            | ':'
            | '.'
            | '?'
            | '@'
            | '#'
            | '&'
            | '$'
    )
}

/// The tokenizer. Usually driven via [`Lexer::tokenize`].
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
}

impl<'src> Lexer<'src> {
    /// Create a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Tokenize the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] on unterminated quotes/comments or stray
    /// characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        loop {
            let layout_before = self.skip_layout()?;
            let line = self.line;
            let Some(c) = self.peek() else { break };
            let kind = self.next_kind(c)?;
            tokens.push(Token {
                kind,
                line,
                layout_before,
            });
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<char> {
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.src.get(self.pos + offset).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skip whitespace and comments; report whether anything was skipped.
    fn skip_layout(&mut self) -> Result<bool, LexError> {
        let start = self.pos;
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    line,
                                })
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(self.pos != start)
    }

    fn next_kind(&mut self, c: char) -> Result<TokenKind, LexError> {
        match c {
            '(' => {
                self.bump();
                Ok(TokenKind::OpenParen)
            }
            ')' => {
                self.bump();
                Ok(TokenKind::CloseParen)
            }
            '[' => {
                self.bump();
                Ok(TokenKind::OpenBracket)
            }
            ']' => {
                self.bump();
                Ok(TokenKind::CloseBracket)
            }
            '{' => {
                self.bump();
                Ok(TokenKind::OpenBrace)
            }
            '}' => {
                self.bump();
                Ok(TokenKind::CloseBrace)
            }
            ',' => {
                self.bump();
                Ok(TokenKind::Comma)
            }
            '|' => {
                self.bump();
                Ok(TokenKind::Bar)
            }
            '!' => {
                self.bump();
                Ok(TokenKind::Atom("!".into()))
            }
            ';' => {
                self.bump();
                Ok(TokenKind::Atom(";".into()))
            }
            '\'' => self.quoted_atom(),
            '"' => self.string(),
            '0'..='9' => self.number(),
            c if c == '_' || c.is_ascii_uppercase() => {
                let name = self.word();
                Ok(TokenKind::Var(name))
            }
            c if c.is_ascii_lowercase() => {
                let name = self.word();
                Ok(TokenKind::Atom(name))
            }
            c if is_symbol_char(c) => {
                let start = self.pos;
                while self.peek().is_some_and(is_symbol_char) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_owned();
                // A lone `.` followed by layout or EOF ends the clause.
                if text == "." {
                    return Ok(TokenKind::End);
                }
                Ok(TokenKind::Atom(text))
            }
            other => Err(LexError {
                message: format!("unexpected character {other:?}"),
                line: self.line,
            }),
        }
    }

    fn word(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            self.bump();
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii")
            .to_owned()
    }

    fn number(&mut self) -> Result<TokenKind, LexError> {
        let line = self.line;
        // 0'c — character-code literal.
        if self.peek() == Some('0') && self.peek_at(1) == Some('\'') {
            self.bump();
            self.bump();
            let c = self.bump().ok_or_else(|| LexError {
                message: "unterminated character-code literal".into(),
                line,
            })?;
            let code = if c == '\\' {
                let esc = self.bump().ok_or_else(|| LexError {
                    message: "unterminated escape in character-code literal".into(),
                    line,
                })?;
                escape_char(esc).ok_or_else(|| LexError {
                    message: format!("unknown escape \\{esc}"),
                    line,
                })?
            } else {
                c
            };
            return Ok(TokenKind::Int(code as i64));
        }
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|_| LexError {
                message: format!("integer literal out of range: {text}"),
                line,
            })
    }

    fn quoted_atom(&mut self) -> Result<TokenKind, LexError> {
        let line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        text.push('\'');
                    } else {
                        return Ok(TokenKind::Atom(text));
                    }
                }
                Some('\\') => {
                    let esc = self.bump().ok_or_else(|| LexError {
                        message: "unterminated escape in quoted atom".into(),
                        line,
                    })?;
                    match escape_char(esc) {
                        Some(c) => text.push(c),
                        None => {
                            return Err(LexError {
                                message: format!("unknown escape \\{esc}"),
                                line,
                            })
                        }
                    }
                }
                Some(c) => text.push(c),
                None => {
                    return Err(LexError {
                        message: "unterminated quoted atom".into(),
                        line,
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<TokenKind, LexError> {
        let line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('"') => {
                    if self.peek() == Some('"') {
                        self.bump();
                        text.push('"');
                    } else {
                        return Ok(TokenKind::Str(text));
                    }
                }
                Some('\\') => {
                    let esc = self.bump().ok_or_else(|| LexError {
                        message: "unterminated escape in string".into(),
                        line,
                    })?;
                    match escape_char(esc) {
                        Some(c) => text.push(c),
                        None => {
                            return Err(LexError {
                                message: format!("unknown escape \\{esc}"),
                                line,
                            })
                        }
                    }
                }
                Some(c) => text.push(c),
                None => {
                    return Err(LexError {
                        message: "unterminated string".into(),
                        line,
                    })
                }
            }
        }
    }
}

fn escape_char(c: char) -> Option<char> {
    match c {
        'n' => Some('\n'),
        't' => Some('\t'),
        'r' => Some('\r'),
        'a' => Some('\x07'),
        'b' => Some('\x08'),
        'f' => Some('\x0c'),
        'v' => Some('\x0b'),
        '0' => Some('\0'),
        '\\' => Some('\\'),
        '\'' => Some('\''),
        '"' => Some('"'),
        '`' => Some('`'),
        ' ' => Some(' '),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_and_vars() {
        assert_eq!(
            lex("foo Bar _baz"),
            vec![
                TokenKind::Atom("foo".into()),
                TokenKind::Var("Bar".into()),
                TokenKind::Var("_baz".into()),
            ]
        );
    }

    #[test]
    fn symbolic_atoms_glue() {
        assert_eq!(
            lex(":- =.. \\+ ->"),
            vec![
                TokenKind::Atom(":-".into()),
                TokenKind::Atom("=..".into()),
                TokenKind::Atom("\\+".into()),
                TokenKind::Atom("->".into()),
            ]
        );
    }

    #[test]
    fn clause_end_dot() {
        assert_eq!(
            lex("a. b."),
            vec![
                TokenKind::Atom("a".into()),
                TokenKind::End,
                TokenKind::Atom("b".into()),
                TokenKind::End,
            ]
        );
    }

    #[test]
    fn end_dot_at_eof_without_trailing_newline() {
        assert_eq!(lex("a."), vec![TokenKind::Atom("a".into()), TokenKind::End]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            lex("42 0 007"),
            vec![TokenKind::Int(42), TokenKind::Int(0), TokenKind::Int(7),]
        );
    }

    #[test]
    fn char_code_literal() {
        assert_eq!(lex("0'a 0' "), vec![TokenKind::Int(97), TokenKind::Int(32)]);
    }

    #[test]
    fn comments_are_layout() {
        let tokens = Lexer::new("a % comment\nb /* block */ c")
            .tokenize()
            .unwrap();
        assert_eq!(tokens.len(), 3);
        assert!(tokens[1].layout_before);
        assert!(tokens[2].layout_before);
    }

    #[test]
    fn functor_paren_adjacency() {
        let tokens = Lexer::new("f(X) f (X)").tokenize().unwrap();
        // f ( X ) f ( X )
        assert!(!tokens[1].layout_before, "f( is adjacent");
        assert!(tokens[5].layout_before, "f ( has layout");
    }

    #[test]
    fn quoted_atoms_and_strings() {
        assert_eq!(
            lex("'hello world' \"AB\""),
            vec![
                TokenKind::Atom("hello world".into()),
                TokenKind::Str("AB".into()),
            ]
        );
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(
            lex(r"'don''t' 'a\nb'"),
            vec![
                TokenKind::Atom("don't".into()),
                TokenKind::Atom("a\nb".into()),
            ]
        );
    }

    #[test]
    fn solo_chars() {
        assert_eq!(
            lex("! ; , |"),
            vec![
                TokenKind::Atom("!".into()),
                TokenKind::Atom(";".into()),
                TokenKind::Comma,
                TokenKind::Bar,
            ]
        );
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(Lexer::new("'oops").tokenize().is_err());
        assert!(Lexer::new("\"oops").tokenize().is_err());
        assert!(Lexer::new("/* oops").tokenize().is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let tokens = Lexer::new("a\nb\n\nc").tokenize().unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 4);
    }
}
