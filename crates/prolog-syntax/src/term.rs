//! Terms, clauses and programs.

use crate::interner::{Interner, Symbol};
use std::fmt;

/// A clause-local variable identifier.
///
/// Variables are numbered per clause in first-occurrence order; the clause's
/// [`Clause::var_names`] table maps them back to source names for display.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index of the variable within its clause.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A Prolog term.
///
/// Lists are represented structurally: `[H|T]` is `Struct('.', [H, T])` and
/// `[]` is `Atom(nil)`. The parser produces this representation directly.
///
/// # Examples
///
/// ```
/// use prolog_syntax::{parse_term, Term};
/// let (term, interner, names) = parse_term("f(X, [a], 3)")?;
/// match &term {
///     Term::Struct(f, args) => {
///         assert_eq!(interner.resolve(*f), "f");
///         assert_eq!(args.len(), 3);
///     }
///     _ => unreachable!(),
/// }
/// # Ok::<(), prolog_syntax::ParseError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, numbered within its clause.
    Var(VarId),
    /// An integer constant.
    Int(i64),
    /// An atom (including `[]`).
    Atom(Symbol),
    /// A compound term `f(t1, …, tn)` with `n >= 1`.
    Struct(Symbol, Vec<Term>),
}

impl Term {
    /// Construct a cons cell `[head|tail]`.
    pub fn cons(interner: &Interner, head: Term, tail: Term) -> Term {
        Term::Struct(interner.dot(), vec![head, tail])
    }

    /// Construct the empty list `[]`.
    pub fn nil(interner: &Interner) -> Term {
        Term::Atom(interner.nil())
    }

    /// Construct a proper list from `items`.
    pub fn list(interner: &Interner, items: impl IntoIterator<Item = Term>) -> Term {
        let items: Vec<Term> = items.into_iter().collect();
        let mut tail = Term::nil(interner);
        for item in items.into_iter().rev() {
            tail = Term::cons(interner, item, tail);
        }
        tail
    }

    /// The functor name and arity of this term, treating atoms as arity-0
    /// functors. Variables and integers have no functor.
    pub fn functor(&self) -> Option<(Symbol, usize)> {
        match self {
            Term::Atom(name) => Some((*name, 0)),
            Term::Struct(name, args) => Some((*name, args.len())),
            Term::Var(_) | Term::Int(_) => None,
        }
    }

    /// Whether this term is the atom `sym`.
    pub fn is_atom(&self, sym: Symbol) -> bool {
        matches!(self, Term::Atom(s) if *s == sym)
    }

    /// Whether this term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Int(_) | Term::Atom(_) => true,
            Term::Struct(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// All variables occurring in the term, in first-occurrence order,
    /// without duplicates.
    pub fn variables(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Int(_) | Term::Atom(_) => {}
            Term::Struct(_, args) => {
                for arg in args {
                    arg.collect_variables(out);
                }
            }
        }
    }

    /// The maximum nesting depth of the term (constants and variables have
    /// depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Term::Var(_) | Term::Int(_) | Term::Atom(_) => 1,
            Term::Struct(_, args) => 1 + args.iter().map(Term::depth).max().unwrap_or(0),
        }
    }

    /// View a conjunction `(a, b, c)` as a flat list of goals.
    pub fn conjuncts(&self, interner: &Interner) -> Vec<Term> {
        let mut out = Vec::new();
        self.collect_conjuncts(interner.comma(), &mut out);
        out
    }

    fn collect_conjuncts(&self, comma: Symbol, out: &mut Vec<Term>) {
        match self {
            Term::Struct(f, args) if *f == comma && args.len() == 2 => {
                args[0].collect_conjuncts(comma, out);
                args[1].collect_conjuncts(comma, out);
            }
            other => out.push(other.clone()),
        }
    }
}

/// A predicate key: functor name and arity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredKey {
    /// The predicate's functor name.
    pub name: Symbol,
    /// The predicate's arity.
    pub arity: usize,
}

impl PredKey {
    /// Build a key from a callable term (atom or struct).
    pub fn of_term(term: &Term) -> Option<PredKey> {
        term.functor().map(|(name, arity)| PredKey { name, arity })
    }

    /// Render as `name/arity`.
    pub fn display(&self, interner: &Interner) -> String {
        format!("{}/{}", interner.resolve(self.name), self.arity)
    }
}

/// One program clause `Head :- Body`.
///
/// Facts have body `true`. The body is kept as a term so that control
/// constructs (`;`, `->`, `\+`) survive parsing; the WAM compiler performs
/// its own normalization.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// The clause head (an atom or compound term, never a variable).
    pub head: Term,
    /// The clause body; the atom `true` for facts.
    pub body: Term,
    /// Source names of the clause's variables, indexed by [`VarId`].
    /// Anonymous variables are named `_`.
    pub var_names: Vec<String>,
}

impl Clause {
    /// The predicate this clause belongs to.
    pub fn pred_key(&self) -> PredKey {
        PredKey::of_term(&self.head).expect("clause head is atom or struct")
    }

    /// Number of distinct variables in the clause.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }
}

/// A parsed program: an interner plus clauses in source order.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The interner for all atoms/functors in the program.
    pub interner: Interner,
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
    /// Directive goals (`:- Goal.`) in source order, currently only recorded.
    pub directives: Vec<Term>,
}

impl Program {
    /// Create an empty program with a fresh interner.
    pub fn new() -> Self {
        Program {
            interner: Interner::new(),
            clauses: Vec::new(),
            directives: Vec::new(),
        }
    }

    /// Group clause indices by predicate, preserving first-occurrence order.
    pub fn predicate_index(&self) -> Vec<(PredKey, Vec<usize>)> {
        let mut order: Vec<PredKey> = Vec::new();
        let mut groups: std::collections::HashMap<PredKey, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, clause) in self.clauses.iter().enumerate() {
            let key = clause.pred_key();
            let entry = groups.entry(key).or_default();
            if entry.is_empty() {
                order.push(key);
            }
            entry.push(i);
        }
        order
            .into_iter()
            .map(|key| {
                let clauses = groups.remove(&key).unwrap_or_default();
                (key, clauses)
            })
            .collect()
    }

    /// Total number of argument places over all predicates (the `Args`
    /// column of the paper's Table 1).
    pub fn total_arg_places(&self) -> usize {
        self.predicate_index()
            .iter()
            .map(|(key, _)| key.arity)
            .sum()
    }

    /// Number of distinct predicates (the `Preds` column of Table 1).
    pub fn num_predicates(&self) -> usize {
        self.predicate_index().len()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            writeln!(
                f,
                "{}",
                crate::pretty::clause_to_string(clause, &self.interner)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        crate::parse_program(src).expect("parse")
    }

    #[test]
    fn list_construction_round_trips() {
        let mut i = Interner::new();
        let a = Term::Atom(i.intern("a"));
        let b = Term::Atom(i.intern("b"));
        let list = Term::list(&i, vec![a.clone(), b.clone()]);
        match &list {
            Term::Struct(dot, args) => {
                assert_eq!(*dot, i.dot());
                assert_eq!(args[0], a);
            }
            _ => panic!("expected cons"),
        }
    }

    #[test]
    fn ground_detection() {
        let p = program("p(f(a, 1), X).");
        let head = &p.clauses[0].head;
        match head {
            Term::Struct(_, args) => {
                assert!(args[0].is_ground());
                assert!(!args[1].is_ground());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn variables_in_first_occurrence_order() {
        let p = program("p(X, Y, X, Z).");
        let vars = p.clauses[0].head.variables();
        assert_eq!(vars, vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn conjuncts_flatten() {
        let p = program("p :- a, b, c.");
        let goals = p.clauses[0].body.conjuncts(&p.interner);
        assert_eq!(goals.len(), 3);
    }

    #[test]
    fn predicate_index_groups_and_orders() {
        let p = program("a. b(1). a. c(X) :- b(X).");
        let index = p.predicate_index();
        assert_eq!(index.len(), 3);
        assert_eq!(index[0].1, vec![0, 2]);
        assert_eq!(p.num_predicates(), 3);
        assert_eq!(p.total_arg_places(), 1 + 1);
    }

    #[test]
    fn depth_counts_nesting() {
        let p = program("p(f(g(h(a)))).");
        assert_eq!(p.clauses[0].head.depth(), 5);
    }
}
