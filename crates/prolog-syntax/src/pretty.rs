//! Pretty-printing of terms and clauses, operator-aware.
//!
//! The printer is the inverse of the parser on the supported syntax:
//! `parse ∘ print` is the identity on terms (tested property-style in the
//! crate's test suite).

use crate::interner::Interner;
use crate::ops::OpTable;
use crate::term::{Clause, Term};

/// Render `term` using `var_names` for variable display.
///
/// Variables whose id exceeds the name table (e.g. freshly invented ones)
/// print as `_G<n>`.
///
/// # Examples
///
/// ```
/// use prolog_syntax::{parse_term, term_to_string};
/// let (t, i, names) = parse_term("[H|T]")?;
/// assert_eq!(term_to_string(&t, &i, &names), "[H|T]");
/// # Ok::<(), prolog_syntax::ParseError>(())
/// ```
pub fn term_to_string(term: &Term, interner: &Interner, var_names: &[String]) -> String {
    let printer = Printer {
        interner,
        ops: OpTable::standard(),
        var_names,
    };
    let mut out = String::new();
    printer.print(term, 1200, &mut out);
    out
}

/// Render a clause as `Head :- Body.` (or `Head.` for facts).
pub fn clause_to_string(clause: &Clause, interner: &Interner) -> String {
    let head = term_to_string(&clause.head, interner, &clause.var_names);
    if clause.body.is_atom(interner.true_()) {
        format!("{head}.")
    } else {
        let body = term_to_string(&clause.body, interner, &clause.var_names);
        format!("{head} :- {body}.")
    }
}

struct Printer<'a> {
    interner: &'a Interner,
    ops: OpTable,
    var_names: &'a [String],
}

impl Printer<'_> {
    fn print(&self, term: &Term, max_prec: u32, out: &mut String) {
        match term {
            Term::Var(v) => match self.var_names.get(v.index()) {
                Some(name) if name != "_" => out.push_str(name),
                Some(_) => {
                    out.push_str("_G");
                    out.push_str(&v.0.to_string());
                }
                None => {
                    out.push_str("_G");
                    out.push_str(&v.0.to_string());
                }
            },
            Term::Int(i) => out.push_str(&i.to_string()),
            Term::Atom(a) => self.print_atom(self.interner.resolve(*a), out),
            Term::Struct(f, args) => self.print_struct(*f, args, max_prec, out),
        }
    }

    fn print_struct(&self, f: crate::Symbol, args: &[Term], max_prec: u32, out: &mut String) {
        // Lists.
        if f == self.interner.dot() && args.len() == 2 {
            self.print_list(&args[0], &args[1], out);
            return;
        }
        let name = self.interner.resolve(f);
        // Comma conjunction.
        if f == self.interner.comma() && args.len() == 2 {
            let needs_parens = 1000 > max_prec;
            if needs_parens {
                out.push('(');
            }
            self.print(&args[0], 999, out);
            out.push_str(", ");
            self.print(&args[1], 1000, out);
            if needs_parens {
                out.push(')');
            }
            return;
        }
        // Infix operators.
        if args.len() == 2 {
            if let Some(op) = self.ops.infix(name) {
                let needs_parens = op.priority > max_prec;
                if needs_parens {
                    out.push('(');
                }
                self.print(&args[0], op.left_max(), out);
                out.push(' ');
                out.push_str(name);
                out.push(' ');
                self.print(&args[1], op.right_max(), out);
                if needs_parens {
                    out.push(')');
                }
                return;
            }
        }
        // Prefix operators.
        if args.len() == 1 {
            if let Some(op) = self.ops.prefix(name) {
                let needs_parens = op.priority > max_prec;
                if needs_parens {
                    out.push('(');
                }
                out.push_str(name);
                out.push(' ');
                self.print(&args[0], op.right_max(), out);
                if needs_parens {
                    out.push(')');
                }
                return;
            }
        }
        // Canonical functor application.
        self.print_atom(name, out);
        out.push('(');
        for (i, arg) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            self.print(arg, 999, out);
        }
        out.push(')');
    }

    fn print_list(&self, head: &Term, tail: &Term, out: &mut String) {
        out.push('[');
        self.print(head, 999, out);
        let mut tail = tail;
        loop {
            match tail {
                Term::Atom(a) if *a == self.interner.nil() => break,
                Term::Struct(f, args) if *f == self.interner.dot() && args.len() == 2 => {
                    out.push_str(", ");
                    self.print(&args[0], 999, out);
                    tail = &args[1];
                }
                other => {
                    out.push('|');
                    self.print(other, 999, out);
                    break;
                }
            }
        }
        out.push(']');
    }

    fn print_atom(&self, name: &str, out: &mut String) {
        if atom_needs_quotes(name) {
            out.push('\'');
            for c in name.chars() {
                match c {
                    '\'' => out.push_str("\\'"),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('\'');
        } else {
            out.push_str(name);
        }
    }
}

/// Whether an atom's text requires single quotes to re-read.
pub fn atom_needs_quotes(name: &str) -> bool {
    if name.is_empty() {
        return true;
    }
    if matches!(name, "[]" | "{}" | "!" | ";") {
        return false;
    }
    let mut chars = name.chars();
    let first = chars.next().expect("non-empty");
    if first.is_ascii_lowercase() {
        return !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    }
    // All-symbolic atoms read back unquoted.
    let symbolic = |c: char| {
        matches!(
            c,
            '+' | '-'
                | '*'
                | '/'
                | '\\'
                | '^'
                | '<'
                | '>'
                | '='
                | '~'
                | ':'
                | '.'
                | '?'
                | '@'
                | '#'
                | '&'
                | '$'
        )
    };
    if name.chars().all(symbolic) {
        // A lone dot would read as end-of-clause.
        return name == ".";
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_term;

    #[test]
    fn quoting_rules() {
        assert!(!atom_needs_quotes("foo"));
        assert!(!atom_needs_quotes("foo_Bar1"));
        assert!(!atom_needs_quotes("=.."));
        assert!(!atom_needs_quotes("[]"));
        assert!(!atom_needs_quotes("!"));
        assert!(atom_needs_quotes("Foo"));
        assert!(atom_needs_quotes("hello world"));
        assert!(atom_needs_quotes(""));
        assert!(atom_needs_quotes("."));
    }

    #[test]
    fn quoted_atom_round_trips() {
        let (t, i, names) = parse_term("'hello world'").unwrap();
        let s = term_to_string(&t, &i, &names);
        assert_eq!(s, "'hello world'");
        let (t2, i2, _) = parse_term(&s).unwrap();
        match (&t, &t2) {
            (Term::Atom(a), Term::Atom(b)) => {
                assert_eq!(i.resolve(*a), i2.resolve(*b));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parenthesization() {
        let cases = [
            "(1 + 2) * 3",
            "1 + 2 * 3",
            "a :- b, (c ; d)",
            "\\+ (a, b)",
            "- (1 + 2)",
        ];
        for src in cases {
            let (t, i, names) = parse_term(src).unwrap();
            let printed = term_to_string(&t, &i, &names);
            let (t2, _, _) = parse_term(&printed).unwrap();
            // Structural equality up to interner indices: compare by reprinting.
            let reprinted = term_to_string(&t2, &i, &names);
            assert_eq!(printed, reprinted, "for source {src}");
        }
    }

    #[test]
    fn improper_list_tail() {
        let (t, i, names) = parse_term("[a|b]").unwrap();
        assert_eq!(term_to_string(&t, &i, &names), "[a|b]");
    }

    #[test]
    fn clause_printing() {
        let p = crate::parse_program("p(X) :- q(X). f(a).").unwrap();
        assert_eq!(
            clause_to_string(&p.clauses[0], &p.interner),
            "p(X) :- q(X)."
        );
        assert_eq!(clause_to_string(&p.clauses[1], &p.interner), "f(a).");
    }
}
