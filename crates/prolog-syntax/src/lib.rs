//! Prolog front-end: terms, lexer, operator-precedence parser and
//! pretty-printer.
//!
//! This crate is the source-language substrate of the `awam` workspace. It
//! knows nothing about the WAM or abstract interpretation; it only reads
//! Prolog text into a [`Program`] of [`Clause`]s over [`Term`]s, and prints
//! them back.
//!
//! # Examples
//!
//! ```
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).")?;
//! assert_eq!(program.clauses.len(), 2);
//! let preds = program.predicate_index();
//! assert_eq!(preds.len(), 1);
//! # Ok::<(), prolog_syntax::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod interner;
pub mod lexer;
pub mod ops;
pub mod parser;
pub mod pretty;
pub mod term;

pub use interner::{Interner, Symbol};
pub use lexer::{LexError, Lexer, Token, TokenKind};
pub use parser::{parse_program, parse_program_with_interner, parse_term, ParseError, Parser};
pub use pretty::{clause_to_string, term_to_string};
pub use term::{Clause, PredKey, Program, Term, VarId};
