//! Operator-precedence parser for Prolog programs.
//!
//! Implements the classic Prolog `read_term` algorithm over the token stream
//! produced by [`crate::lexer::Lexer`], using the operator table from
//! [`crate::ops::OpTable`].

use crate::interner::Interner;
use crate::lexer::{LexError, Lexer, Token, TokenKind};
use crate::ops::OpTable;
use crate::term::{Clause, Program, Term, VarId};
use std::collections::HashMap;
use std::fmt;

/// An error produced while parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, 0 when at end of input.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a complete program (a sequence of clauses and directives).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let program = prolog_syntax::parse_program("p(X) :- q(X), r(X). q(1). r(1).")?;
/// assert_eq!(program.clauses.len(), 3);
/// # Ok::<(), prolog_syntax::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_with_interner(src, Interner::new())
}

/// Like [`parse_program`] but reusing an existing interner, so symbols are
/// shared with previously parsed programs.
pub fn parse_program_with_interner(src: &str, interner: Interner) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut program = Program {
        interner,
        clauses: Vec::new(),
        directives: Vec::new(),
    };
    let neck = program.interner.neck();
    let true_atom = program.interner.true_();
    let mut parser = Parser::new(&tokens, &mut program.interner);
    while !parser.at_end() {
        let (term, var_names) = parser.read_clause_term()?;
        match term {
            Term::Struct(f, args) if f == neck && args.len() == 2 => {
                let mut args = args;
                let body = args.pop().expect("arity 2");
                let head = args.pop().expect("arity 2");
                validate_head(&head, parser.line())?;
                program.clauses.push(Clause {
                    head,
                    body,
                    var_names,
                });
            }
            Term::Struct(f, args) if f == neck && args.len() == 1 => {
                program
                    .directives
                    .push(args.into_iter().next().expect("arity 1"));
            }
            head => {
                validate_head(&head, parser.line())?;
                let body = Term::Atom(true_atom);
                program.clauses.push(Clause {
                    head,
                    body,
                    var_names,
                });
            }
        }
    }
    Ok(program)
}

fn validate_head(head: &Term, line: u32) -> Result<(), ParseError> {
    match head {
        Term::Atom(_) | Term::Struct(_, _) => Ok(()),
        _ => Err(ParseError {
            message: "clause head must be an atom or compound term".into(),
            line,
        }),
    }
}

/// Parse a single term (ending at end of input or a clause dot).
///
/// Returns the term, the interner, and the source names of its variables
/// indexed by [`VarId`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_term(src: &str) -> Result<(Term, Interner, Vec<String>), ParseError> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut interner = Interner::new();
    let mut parser = Parser::new(&tokens, &mut interner);
    let (term, _) = parser.parse(1200)?;
    // Allow an optional clause-terminating dot.
    if !parser.at_end() {
        parser.expect_end()?;
    }
    if !parser.at_end() {
        return Err(ParseError {
            message: "trailing tokens after term".into(),
            line: parser.line(),
        });
    }
    let names = parser.take_var_names();
    Ok((term, interner, names))
}

/// The parser state machine. Most callers want [`parse_program`] or
/// [`parse_term`] instead.
pub struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    interner: &'a mut Interner,
    ops: OpTable,
    vars: HashMap<String, VarId>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    /// Create a parser over `tokens`, interning into `interner`.
    pub fn new(tokens: &'a [Token], interner: &'a mut Interner) -> Self {
        Parser {
            tokens,
            pos: 0,
            interner,
            ops: OpTable::standard(),
            vars: HashMap::new(),
            var_names: Vec::new(),
        }
    }

    /// Whether all tokens have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line(),
        }
    }

    /// Read one clause-level term terminated by a dot, resetting the
    /// variable scope. Returns the term and its variable names.
    pub fn read_clause_term(&mut self) -> Result<(Term, Vec<String>), ParseError> {
        self.vars.clear();
        self.var_names.clear();
        let (term, _) = self.parse(1200)?;
        self.expect_end()?;
        Ok((term, self.take_var_names()))
    }

    /// Take ownership of the variable names collected since the last
    /// clause reset, indexed by [`VarId`].
    pub fn take_var_names(&mut self) -> Vec<String> {
        std::mem::take(&mut self.var_names)
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        match self.bump().map(|t| t.kind.clone()) {
            Some(TokenKind::End) => Ok(()),
            Some(other) => Err(self.error(format!("expected `.` to end clause, found {other}"))),
            None => Err(self.error("expected `.` to end clause, found end of input")),
        }
    }

    fn fresh_var(&mut self, name: &str) -> Term {
        if name != "_" {
            if let Some(&id) = self.vars.get(name) {
                return Term::Var(id);
            }
        }
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        if name != "_" {
            self.vars.insert(name.to_owned(), id);
        }
        Term::Var(id)
    }

    /// Parse a term of priority at most `max_prec`; returns the term and its
    /// actual priority.
    pub fn parse(&mut self, max_prec: u32) -> Result<(Term, u32), ParseError> {
        let (mut left, mut left_prec) = self.parse_primary(max_prec)?;
        loop {
            match self.peek_kind() {
                Some(TokenKind::Comma) if max_prec >= 1000 => {
                    if left_prec >= 1000 {
                        break;
                    }
                    self.bump();
                    let (right, _) = self.parse(1000)?;
                    let comma = self.interner.comma();
                    left = Term::Struct(comma, vec![left, right]);
                    left_prec = 1000;
                }
                Some(TokenKind::Atom(name)) => {
                    let Some(op) = self.ops.infix(name) else {
                        break;
                    };
                    if op.priority > max_prec || left_prec > op.left_max() {
                        break;
                    }
                    let name = name.clone();
                    self.bump();
                    let (right, _) = self.parse(op.right_max())?;
                    let f = self.interner.intern(&name);
                    left = Term::Struct(f, vec![left, right]);
                    left_prec = op.priority;
                }
                _ => break,
            }
        }
        Ok((left, left_prec))
    }

    fn parse_primary(&mut self, max_prec: u32) -> Result<(Term, u32), ParseError> {
        let token = self
            .bump()
            .ok_or_else(|| ParseError {
                message: "unexpected end of input".into(),
                line: 0,
            })?
            .clone();
        match token.kind {
            TokenKind::Int(i) => Ok((Term::Int(i), 0)),
            TokenKind::Var(name) => Ok((self.fresh_var(&name), 0)),
            TokenKind::Str(text) => {
                let codes = text.chars().map(|c| Term::Int(c as i64));
                Ok((Term::list(self.interner, codes), 0))
            }
            TokenKind::OpenParen => {
                let (term, _) = self.parse(1200)?;
                self.expect(TokenKind::CloseParen)?;
                Ok((term, 0))
            }
            TokenKind::OpenBracket => self.parse_list(),
            TokenKind::OpenBrace => {
                if matches!(self.peek_kind(), Some(TokenKind::CloseBrace)) {
                    self.bump();
                    let curly = self.interner.curly();
                    return Ok((Term::Atom(curly), 0));
                }
                let (term, _) = self.parse(1200)?;
                self.expect(TokenKind::CloseBrace)?;
                let curly = self.interner.curly();
                Ok((Term::Struct(curly, vec![term]), 0))
            }
            TokenKind::Atom(name) => self.parse_atom_or_op(&name, max_prec),
            other => Err(self.error(format!("unexpected {other}"))),
        }
    }

    fn parse_atom_or_op(&mut self, name: &str, max_prec: u32) -> Result<(Term, u32), ParseError> {
        // Compound term: atom immediately followed by `(`.
        if let Some(next) = self.peek() {
            if next.kind == TokenKind::OpenParen && !next.layout_before {
                self.bump();
                let args = self.parse_arg_list()?;
                let f = self.interner.intern(name);
                return Ok((Term::Struct(f, args), 0));
            }
        }
        // Negative integer literal: `-` immediately applied to a number.
        if name == "-" {
            if let Some(TokenKind::Int(i)) = self.peek_kind() {
                let i = *i;
                self.bump();
                return Ok((Term::Int(-i), 0));
            }
        }
        // Prefix operator application.
        if let Some(op) = self.ops.prefix(name) {
            if op.priority <= max_prec && self.starts_term() {
                let (arg, _) = self.parse(op.right_max())?;
                let f = self.interner.intern(name);
                return Ok((Term::Struct(f, vec![arg]), op.priority));
            }
        }
        // Plain atom. An operator used as an operand carries its priority.
        let prec = if self.ops.is_operator(name) { 1 } else { 0 };
        let sym = self.interner.intern(name);
        Ok((Term::Atom(sym), prec))
    }

    /// Whether the next token can begin a term (used to decide whether a
    /// prefix operator is being applied or used as an atom).
    fn starts_term(&self) -> bool {
        match self.peek_kind() {
            Some(TokenKind::Int(_))
            | Some(TokenKind::Var(_))
            | Some(TokenKind::Str(_))
            | Some(TokenKind::OpenParen)
            | Some(TokenKind::OpenBracket)
            | Some(TokenKind::OpenBrace) => true,
            Some(TokenKind::Atom(a)) => {
                // `\+ foo` applies; `:- , .` etc. do not start a term unless
                // the atom is not an infix-only operator.
                self.ops.infix(a).is_none() || self.ops.prefix(a).is_some() || {
                    // An infix operator can still start a term if it is
                    // immediately a functor application, e.g. `-(1,2)`.
                    self.tokens
                        .get(self.pos + 1)
                        .is_some_and(|t| t.kind == TokenKind::OpenParen && !t.layout_before)
                }
            }
            _ => false,
        }
    }

    fn parse_arg_list(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut args = Vec::new();
        loop {
            let (arg, _) = self.parse(999)?;
            args.push(arg);
            match self.bump().map(|t| t.kind.clone()) {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::CloseParen) => return Ok(args),
                Some(other) => {
                    return Err(
                        self.error(format!("expected `,` or `)` in arguments, found {other}"))
                    )
                }
                None => return Err(self.error("unterminated argument list")),
            }
        }
    }

    fn parse_list(&mut self) -> Result<(Term, u32), ParseError> {
        if matches!(self.peek_kind(), Some(TokenKind::CloseBracket)) {
            self.bump();
            return Ok((Term::nil(self.interner), 0));
        }
        let mut items = Vec::new();
        let tail;
        loop {
            let (item, _) = self.parse(999)?;
            items.push(item);
            match self.bump().map(|t| t.kind.clone()) {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::Bar) => {
                    let (t, _) = self.parse(999)?;
                    tail = t;
                    self.expect(TokenKind::CloseBracket)?;
                    break;
                }
                Some(TokenKind::CloseBracket) => {
                    tail = Term::nil(self.interner);
                    break;
                }
                Some(other) => {
                    return Err(
                        self.error(format!("expected `,`, `|` or `]` in list, found {other}"))
                    )
                }
                None => return Err(self.error("unterminated list")),
            }
        }
        let mut term = tail;
        for item in items.into_iter().rev() {
            term = Term::cons(self.interner, item, term);
        }
        Ok((term, 0))
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        match self.bump().map(|t| t.kind.clone()) {
            Some(k) if k == kind => Ok(()),
            Some(other) => Err(self.error(format!("expected {kind}, found {other}"))),
            None => Err(self.error(format!("expected {kind}, found end of input"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::term_to_string;

    fn roundtrip(src: &str) -> String {
        let (term, interner, names) = parse_term(src).expect("parse");
        term_to_string(&term, &interner, &names)
    }

    #[test]
    fn atoms_ints_vars() {
        assert_eq!(roundtrip("foo"), "foo");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("X"), "X");
        assert_eq!(roundtrip("-7"), "-7");
    }

    #[test]
    fn compound_terms() {
        assert_eq!(roundtrip("f(a, B, g(1))"), "f(a, B, g(1))");
    }

    #[test]
    fn operator_priorities() {
        assert_eq!(roundtrip("1 + 2 * 3"), "1 + 2 * 3");
        let (term, interner, _) = parse_term("1 + 2 * 3").unwrap();
        // + at the top
        match &term {
            Term::Struct(f, args) => {
                assert_eq!(interner.resolve(*f), "+");
                assert!(matches!(args[0], Term::Int(1)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn left_associativity() {
        let (term, interner, _) = parse_term("1 - 2 - 3").unwrap();
        match &term {
            Term::Struct(f, args) => {
                assert_eq!(interner.resolve(*f), "-");
                assert!(matches!(args[1], Term::Int(3)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn right_associative_comma_and_semicolon() {
        let (term, interner, _) = parse_term("(a, b, c)").unwrap();
        match &term {
            Term::Struct(f, args) => {
                assert_eq!(*f, interner.comma());
                assert!(matches!(args[0], Term::Atom(_)));
                assert!(matches!(&args[1], Term::Struct(g, _) if *g == interner.comma()));
            }
            _ => panic!(),
        }
        let (term, interner, _) = parse_term("a ; b ; c").unwrap();
        match &term {
            Term::Struct(f, args) => {
                assert_eq!(*f, interner.semicolon());
                assert!(matches!(&args[1], Term::Struct(g, _) if *g == interner.semicolon()));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn lists() {
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("[a]"), "[a]");
        assert_eq!(roundtrip("[a, b, c]"), "[a, b, c]");
        assert_eq!(roundtrip("[H|T]"), "[H|T]");
        assert_eq!(roundtrip("[a, b|T]"), "[a, b|T]");
    }

    #[test]
    fn strings_become_code_lists() {
        let (term, interner, _) = parse_term("\"AB\"").unwrap();
        let expected = Term::list(&interner, vec![Term::Int(65), Term::Int(66)]);
        assert_eq!(term, expected);
    }

    #[test]
    fn variables_are_scoped_per_clause() {
        let p = parse_program("p(X, X). q(X).").unwrap();
        assert_eq!(p.clauses[0].num_vars(), 1);
        assert_eq!(p.clauses[1].num_vars(), 1);
    }

    #[test]
    fn anonymous_vars_are_distinct() {
        let p = parse_program("p(_, _).").unwrap();
        assert_eq!(p.clauses[0].num_vars(), 2);
        let vars = p.clauses[0].head.variables();
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn clause_and_fact_parsing() {
        let p = parse_program("p(X) :- q(X), r(X).\nq(1).\n").unwrap();
        assert_eq!(p.clauses.len(), 2);
        let goals = p.clauses[0].body.conjuncts(&p.interner);
        assert_eq!(goals.len(), 2);
        assert!(p.clauses[1].body.is_atom(p.interner.true_()));
    }

    #[test]
    fn directives_are_recorded() {
        let p = parse_program(":- main.\nmain.").unwrap();
        assert_eq!(p.directives.len(), 1);
        assert_eq!(p.clauses.len(), 1);
    }

    #[test]
    fn is_and_comparison() {
        assert_eq!(roundtrip("X is Y + 1"), "X is Y + 1");
        assert_eq!(roundtrip("X =< Y"), "X =< Y");
        assert_eq!(roundtrip("X =:= Y mod 2"), "X =:= Y mod 2");
    }

    #[test]
    fn negation_and_cut() {
        let p = parse_program("p :- \\+ q, !, r.").unwrap();
        let goals = p.clauses[0].body.conjuncts(&p.interner);
        assert_eq!(goals.len(), 3);
        assert!(matches!(&goals[0], Term::Struct(f, args)
            if *f == p.interner.not() && args.len() == 1));
        assert!(goals[1].is_atom(p.interner.cut()));
    }

    #[test]
    fn if_then_else() {
        let p = parse_program("p :- (a -> b ; c).").unwrap();
        match &p.clauses[0].body {
            Term::Struct(semi, args) => {
                assert_eq!(*semi, p.interner.semicolon());
                assert!(matches!(&args[0], Term::Struct(arrow, _)
                    if *arrow == p.interner.arrow()));
            }
            _ => panic!("expected ;/2 body"),
        }
    }

    #[test]
    fn head_must_be_callable() {
        assert!(parse_program("X :- a.").is_err());
        assert!(parse_program("1.").is_err());
    }

    #[test]
    fn error_messages_carry_lines() {
        let err = parse_program("p :- q.\nr :- ]").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn operator_as_plain_atom_in_args() {
        // `-` as an argument atom (common in op tables / option lists).
        let (term, interner, _) = parse_term("f(-, +)").unwrap();
        match &term {
            Term::Struct(_, args) => {
                assert!(matches!(&args[0], Term::Atom(s) if interner.resolve(*s) == "-"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn deep_nesting() {
        let mut src = String::from("a");
        for _ in 0..200 {
            src = format!("f({src})");
        }
        let (term, ..) = parse_term(&src).unwrap();
        assert_eq!(term.depth(), 201);
    }

    #[test]
    fn infix_functor_application() {
        // -(1, 2) is the struct -(1,2), not subtraction syntax.
        let (term, interner, _) = parse_term("-(1, 2)").unwrap();
        match &term {
            Term::Struct(f, args) => {
                assert_eq!(interner.resolve(*f), "-");
                assert_eq!(args.len(), 2);
            }
            _ => panic!(),
        }
    }
}
