//! The standard Prolog operator table.

use std::collections::HashMap;

/// Operator fixity and argument-priority constraints, as in ISO Prolog.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpType {
    /// Infix, both arguments strictly lower priority.
    Xfx,
    /// Infix, right argument may have equal priority (right-associative).
    Xfy,
    /// Infix, left argument may have equal priority (left-associative).
    Yfx,
    /// Prefix, argument strictly lower priority.
    Fx,
    /// Prefix, argument may have equal priority.
    Fy,
}

impl OpType {
    /// Whether this is a prefix operator type.
    pub fn is_prefix(self) -> bool {
        matches!(self, OpType::Fx | OpType::Fy)
    }
}

/// A single operator definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpDef {
    /// Operator priority, 1..=1200 (lower binds tighter).
    pub priority: u32,
    /// Fixity.
    pub typ: OpType,
}

impl OpDef {
    /// Maximum priority allowed for the left argument of an infix operator.
    pub fn left_max(self) -> u32 {
        match self.typ {
            OpType::Yfx => self.priority,
            _ => self.priority - 1,
        }
    }

    /// Maximum priority allowed for the right (or only) argument.
    pub fn right_max(self) -> u32 {
        match self.typ {
            OpType::Xfy | OpType::Fy => self.priority,
            _ => self.priority - 1,
        }
    }
}

/// The operator table: name → prefix and/or infix definitions.
///
/// # Examples
///
/// ```
/// use prolog_syntax::ops::OpTable;
/// let table = OpTable::standard();
/// assert_eq!(table.infix(":-").unwrap().priority, 1200);
/// assert!(table.prefix("\\+").is_some());
/// ```
#[derive(Clone, Debug)]
pub struct OpTable {
    prefix: HashMap<&'static str, OpDef>,
    infix: HashMap<&'static str, OpDef>,
}

impl OpTable {
    /// The standard table (the usual Edinburgh/ISO core operators).
    pub fn standard() -> Self {
        use OpType::*;
        let mut table = OpTable {
            prefix: HashMap::new(),
            infix: HashMap::new(),
        };
        let infix: &[(&str, u32, OpType)] = &[
            (":-", 1200, Xfx),
            ("-->", 1200, Xfx),
            (";", 1100, Xfy),
            ("->", 1050, Xfy),
            // `,` is handled by the parser directly (it is not an atom token)
            ("=", 700, Xfx),
            ("\\=", 700, Xfx),
            ("==", 700, Xfx),
            ("\\==", 700, Xfx),
            ("@<", 700, Xfx),
            ("@>", 700, Xfx),
            ("@=<", 700, Xfx),
            ("@>=", 700, Xfx),
            ("is", 700, Xfx),
            ("=:=", 700, Xfx),
            ("=\\=", 700, Xfx),
            ("<", 700, Xfx),
            (">", 700, Xfx),
            ("=<", 700, Xfx),
            (">=", 700, Xfx),
            ("=..", 700, Xfx),
            ("+", 500, Yfx),
            ("-", 500, Yfx),
            ("/\\", 500, Yfx),
            ("\\/", 500, Yfx),
            ("xor", 500, Yfx),
            ("*", 400, Yfx),
            ("/", 400, Yfx),
            ("//", 400, Yfx),
            ("mod", 400, Yfx),
            ("rem", 400, Yfx),
            ("div", 400, Yfx),
            ("<<", 400, Yfx),
            (">>", 400, Yfx),
            ("**", 200, Xfx),
            ("^", 200, Xfy),
        ];
        let prefix: &[(&str, u32, OpType)] = &[
            (":-", 1200, Fx),
            ("?-", 1200, Fx),
            ("\\+", 900, Fy),
            ("-", 200, Fy),
            ("+", 200, Fy),
            ("\\", 200, Fy),
        ];
        for &(name, priority, typ) in infix {
            table.infix.insert(name, OpDef { priority, typ });
        }
        for &(name, priority, typ) in prefix {
            table.prefix.insert(name, OpDef { priority, typ });
        }
        table
    }

    /// The infix definition of `name`, if any.
    pub fn infix(&self, name: &str) -> Option<OpDef> {
        self.infix.get(name).copied()
    }

    /// The prefix definition of `name`, if any.
    pub fn prefix(&self, name: &str) -> Option<OpDef> {
        self.prefix.get(name).copied()
    }

    /// Whether `name` is an operator in any fixity.
    pub fn is_operator(&self, name: &str) -> bool {
        self.infix.contains_key(name) || self.prefix.contains_key(name)
    }
}

impl Default for OpTable {
    fn default() -> Self {
        OpTable::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_priority_bounds() {
        let t = OpTable::standard();
        let neck = t.infix(":-").unwrap();
        assert_eq!(neck.left_max(), 1199);
        assert_eq!(neck.right_max(), 1199);
        let semi = t.infix(";").unwrap();
        assert_eq!(semi.left_max(), 1099);
        assert_eq!(semi.right_max(), 1100);
        let plus = t.infix("+").unwrap();
        assert_eq!(plus.left_max(), 500);
        assert_eq!(plus.right_max(), 499);
        let neg = t.prefix("-").unwrap();
        assert_eq!(neg.right_max(), 200);
    }

    #[test]
    fn both_fixities_coexist() {
        let t = OpTable::standard();
        assert!(t.prefix("-").is_some());
        assert!(t.infix("-").is_some());
        assert!(t.is_operator("is"));
        assert!(!t.is_operator("foo"));
    }
}
