//! The two Prolog-hosted styles — meta-interpretation and program
//! transformation — implement the same abstract semantics, so they must
//! compute the same extension table (entries may be listed in a different
//! order; compare as sets).

use hosted::{HostedAnalyzer, TransformedAnalyzer};
use prolog_syntax::parse_program;
use wam_machine::Machine;

/// Run an analysis program whose `main` has been patched to print the
/// final table, and return the sorted entry strings.
fn table_of(source: &str) -> Vec<String> {
    let parsed = parse_program(source).expect("generated source parses");
    let compiled = wam::compile_program(&parsed).expect("generated source compiles");
    let mut machine = Machine::new(&compiled);
    machine.set_max_steps(5_000_000_000);
    let solution = machine.query_str("main").expect("runs");
    assert!(solution.is_some(), "analysis driver must succeed");
    // Output is `[e(...), e(...)]`; split into entries at `e(` boundaries
    // after stripping the explored flags (y/n are per-run bookkeeping).
    let text = machine.output.trim().to_owned();
    let mut entries: Vec<String> = split_entries(&text)
        .into_iter()
        .map(|e| normalize_flags(&e))
        .collect();
    entries.sort();
    entries
}

fn split_entries(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                current.push(c);
            }
            ')' | ']' => {
                depth = depth.saturating_sub(1);
                current.push(c);
            }
            ',' if depth == 1 => {
                out.push(current.trim().to_owned());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    let tail = current
        .trim()
        .trim_start_matches('[')
        .trim_end_matches(']')
        .trim()
        .to_owned();
    if !tail.is_empty() {
        out.push(tail);
    }
    // The first element still carries the leading `[`.
    out.iter()
        .map(|e| e.trim_start_matches('[').trim().to_owned())
        .filter(|e| !e.is_empty())
        .collect()
}

fn normalize_flags(entry: &str) -> String {
    // e(P, Call, Succ, y|n) → drop the trailing flag.
    entry
        .strip_suffix(", y)")
        .or_else(|| entry.strip_suffix(", n)"))
        .map_or_else(|| entry.to_owned(), |body| format!("{body})"))
}

fn print_table(source: String) -> String {
    source.replace(
        "run(P, Args) :- iterate(P, Args, [], _).",
        "run(P, Args) :- iterate(P, Args, [], E), write(E).",
    )
}

fn print_table_transformed(source: String) -> String {
    source.replace(
        "main :- it_main([], _).",
        "main :- it_main([], E), write(E).",
    )
}

#[test]
fn meta_and_transformed_compute_the_same_table() {
    let programs = [
        (
            "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
            "app",
            vec!["glist", "glist", "var"],
        ),
        (
            "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R). \
             app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
            "nrev",
            vec!["glist", "var"],
        ),
        (
            "fact(0, 1) :- !. fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.",
            "fact",
            vec!["int", "var"],
        ),
        (
            "d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV). d(X, X, 1) :- !. d(_, _, 0).",
            "d",
            vec!["g", "atom", "var"],
        ),
    ];
    for (src, entry, specs) in programs {
        let program = parse_program(src).unwrap();
        let meta_src =
            print_table(HostedAnalyzer::generated_source(&program, entry, &specs).unwrap());
        let trans_src = print_table_transformed(
            TransformedAnalyzer::generated_source(&program, entry, &specs).unwrap(),
        );
        let meta = table_of(&meta_src);
        let trans = table_of(&trans_src);
        assert_eq!(
            meta, trans,
            "tables differ for {entry} on:\n{src}\nmeta: {meta:#?}\ntrans: {trans:#?}"
        );
        assert!(!meta.is_empty(), "{entry}: empty table");
    }
}
