//! The *transforming* approach: the object program is partially evaluated
//! into a specialized Prolog analysis program.
//!
//! The paper's §1 distinguishes two prior implementation styles —
//! meta-interpretation ([6, 17]) and **program transformation** ([5, 23]),
//! where "the transformed predicate p is a deterministic procedure of the
//! original code" (its §5 shows exactly this shape for `p'`/`p`). This
//! module is the transformer: for every object predicate it emits
//! *dedicated* Prolog predicates that inline the clause structure — no
//! `clauses/2` data lookup, no interpretive goal dispatch — on top of the
//! same shared runtime ([`crate::RUNTIME`]) the meta-interpreter uses.
//!
//! With all three styles present (meta-interpretation, transformation,
//! compilation), Table 1 can report the full taxonomy the paper surveys.
//!
//! Generated shape, for a predicate `p/2` with clauses `c1…ck`:
//!
//! ```text
//! 's p/2'(Args, E0, E, Ch0, Ch, Res) :-        % solve: ET consultation
//!     find_entry(E0, 'p/2', Args, F),
//!     ( F = found(S, y) -> … ; …, 'e p/2'(Args, …) ).
//! 'e p/2'(Args, E0, E, Ch0, Ch, Res) :-        % explore all clauses
//!     't p/2.1'(Args, E0, E1, Ch0, Ch1),
//!     …,
//!     find_entry(Ek, 'p/2', Args, found(S, _)), res_of(S, Res).
//! 't p/2.1'(Args, E0, E, Ch0, Ch) :-           % one clause: head + body
//!     ( aunify_args([<head terms>], Args, [], S0) ->
//!         'b p/2.1.0'(S0, E0, E1, Ch0, Ch1, R),
//!         ( R = yes(S) -> abstract_args(…), update_succ(…) ; … )
//!     ; E = E0, Ch = Ch0 ).
//! 'b p/2.1.0'(S0, E0, E, Ch0, Ch, R) :- …      % one goal, chained
//! ```

use crate::{builtin_atom, quote_atom, spec_to_type, term_text, HostedError, RUNTIME};
use prolog_syntax::Program;
use std::fmt::Write as _;
use wam::norm::{normalize_program, Goal, NormProgram};
use wam_machine::Machine;

/// A ready-to-run transformed analysis (same interface as
/// [`crate::HostedAnalyzer`]).
#[derive(Debug)]
pub struct TransformedAnalyzer {
    compiled: wam::CompiledProgram,
}

impl TransformedAnalyzer {
    /// Transform `program` into a specialized analysis program for the
    /// given entry.
    ///
    /// # Errors
    ///
    /// See [`HostedError`].
    pub fn build(
        program: &Program,
        entry: &str,
        entry_specs: &[&str],
    ) -> Result<TransformedAnalyzer, HostedError> {
        let source = Self::generated_source(program, entry, entry_specs)?;
        let parsed =
            prolog_syntax::parse_program(&source).map_err(|e| HostedError::Parse(e.to_string()))?;
        let compiled =
            wam::compile_program(&parsed).map_err(|e| HostedError::Compile(e.to_string()))?;
        Ok(TransformedAnalyzer { compiled })
    }

    /// The transformed program's source, for inspection.
    ///
    /// # Errors
    ///
    /// See [`HostedError`].
    pub fn generated_source(
        program: &Program,
        entry: &str,
        entry_specs: &[&str],
    ) -> Result<String, HostedError> {
        let norm = normalize_program(program).map_err(|e| HostedError::Norm(e.to_string()))?;
        let transformed = transform(&norm, entry, entry_specs)?;
        Ok(format!("{transformed}\n{RUNTIME}"))
    }

    /// Run the transformed analysis once on a fresh concrete machine.
    ///
    /// # Errors
    ///
    /// [`HostedError::Run`] on machine errors.
    pub fn run(&self) -> Result<crate::HostedRun, HostedError> {
        let mut machine = Machine::new(&self.compiled);
        machine.set_max_steps(5_000_000_000);
        let solution = machine
            .query_str("main")
            .map_err(|e| HostedError::Run(e.to_string()))?;
        Ok(crate::HostedRun {
            succeeded: solution.is_some(),
            steps: machine.steps(),
        })
    }

    /// Static code size of the transformed analysis program.
    pub fn code_size(&self) -> usize {
        self.compiled.code_size()
    }
}

fn transform(norm: &NormProgram, entry: &str, entry_specs: &[&str]) -> Result<String, HostedError> {
    let interner = &norm.interner;
    let mut out = String::new();
    let entry_types: Vec<String> = entry_specs
        .iter()
        .map(|s| spec_to_type(s))
        .collect::<Result<_, _>>()?;
    let entry_key = format!("{entry}/{}", entry_specs.len());
    let _ = writeln!(
        out,
        "main :- it_main([], _).\n\
         it_main(E0, E) :-\n    \
             reset_explored(E0, E1),\n    \
             {}([{}], E1, E2, 0, Ch, _),\n    \
             ( Ch =:= 0 -> E = E2 ; it_main(E2, E) ).\n",
        solve_name(&entry_key),
        entry_types.join(", ")
    );

    for (key, clauses) in &norm.predicates {
        let pkey = format!("{}/{}", interner.resolve(key.name), key.arity);
        let pred_atom = quote_atom(&pkey);
        let solve = solve_name(&pkey);
        let explore = mangled("e", &pkey);

        // solve: the §5 `p'` — calling-pattern consultation.
        let _ = writeln!(
            out,
            "{solve}(Args, E0, E, Ch0, Ch, Res) :-\n    \
                 find_entry(E0, {pred_atom}, Args, F),\n    \
                 ( F = found(S, y) ->\n        \
                     E = E0, Ch = Ch0, res_of(S, Res)\n    \
                 ; F = found(_, n) ->\n        \
                     mark_explored(E0, {pred_atom}, Args, E1),\n        \
                     {explore}(Args, E1, E, Ch0, Ch, Res)\n    \
                 ;   insert_entry(E0, {pred_atom}, Args, E1),\n        \
                     {explore}(Args, E1, E, Ch0, Ch, Res)\n    \
                 ).\n"
        );

        // explore: the deterministic clause chain of §5 (`… , fail` becomes
        // sequencing through the per-clause try predicates).
        let mut chain = String::new();
        for ci in 0..clauses.len() {
            let tname = mangled_clause("t", &pkey, ci);
            let _ = writeln!(
                chain,
                "    {tname}(Args, E{ci}, E{}, Ch{ci}, Ch{}),",
                ci + 1,
                ci + 1
            );
        }
        let n = clauses.len();
        let _ = writeln!(
            out,
            "{explore}(Args, E0, E, Ch0, Ch, Res) :-\n\
             {chain}    \
                 find_entry(E{n}, {pred_atom}, Args, found(S, _)),\n    \
                 res_of(S, Res), E = E{n}, Ch = Ch{n}.\n"
        );

        for (ci, clause) in clauses.iter().enumerate() {
            let tname = mangled_clause("t", &pkey, ci);
            let head_terms: Vec<String> = clause
                .head_args
                .iter()
                .map(|t| term_text(t, interner))
                .collect();
            let head_list = format!("[{}]", head_terms.join(", "));
            let body0 = mangled_goal("b", &pkey, ci, 0);
            // try: specialized head unification + body entry, updateET on
            // success, forced continue either way (§5's `updateET, fail`).
            let _ = writeln!(
                out,
                "{tname}(Args, E0, E, Ch0, Ch) :-\n    \
                     ( aunify_args({head_list}, Args, [], S0) ->\n        \
                         {body0}(S0, E0, E1, Ch0, Ch1, R),\n        \
                         ( R = yes(S) ->\n            \
                             abstract_args({head_list}, S, Types),\n            \
                             update_succ(E1, {pred_atom}, Args, Types, E, Ch1, Ch)\n        \
                         ; E = E1, Ch = Ch1 )\n    \
                     ; E = E0, Ch = Ch0 ).\n"
            );

            // body goal chain.
            for (gi, goal) in clause.goals.iter().enumerate() {
                let this = mangled_goal("b", &pkey, ci, gi);
                let next = mangled_goal("b", &pkey, ci, gi + 1);
                match goal {
                    Goal::Cut => {
                        // Sound over-approximation: cut is true.
                        let _ = writeln!(
                            out,
                            "{this}(S0, E0, E, Ch0, Ch, R) :- {next}(S0, E0, E, Ch0, Ch, R).\n"
                        );
                    }
                    Goal::Builtin(b, args) => {
                        let args_list: Vec<String> =
                            args.iter().map(|t| term_text(t, interner)).collect();
                        let _ = writeln!(
                            out,
                            "{this}(S0, E0, E, Ch0, Ch, R) :-\n    \
                                 ( abuiltin({}, [{}], S0, S1) ->\n        \
                                     {next}(S1, E0, E, Ch0, Ch, R)\n    \
                                 ; E = E0, Ch = Ch0, R = no ).\n",
                            builtin_atom(*b),
                            args_list.join(", ")
                        );
                    }
                    Goal::Call(callee, args) => {
                        let ckey = format!("{}/{}", interner.resolve(callee.name), callee.arity);
                        let csolve = solve_name(&ckey);
                        let args_list: Vec<String> =
                            args.iter().map(|t| term_text(t, interner)).collect();
                        let args_list = format!("[{}]", args_list.join(", "));
                        let _ = writeln!(
                            out,
                            "{this}(S0, E0, E, Ch0, Ch, R) :-\n    \
                                 abstract_args({args_list}, S0, Ts),\n    \
                                 {csolve}(Ts, E0, E1, Ch0, Ch1, R1),\n    \
                                 ( R1 = some(Succ) ->\n        \
                                     ( apply_succ({args_list}, Succ, S0, S1) ->\n            \
                                         {next}(S1, E1, E, Ch1, Ch, R)\n        \
                                     ; E = E1, Ch = Ch1, R = no )\n    \
                                 ; E = E1, Ch = Ch1, R = no ).\n"
                        );
                    }
                }
            }
            // Terminal goal: clause body exhausted.
            let end = mangled_goal("b", &pkey, ci, clause.goals.len());
            let _ = writeln!(out, "{end}(S, E, E, Ch, Ch, yes(S)).\n");
        }
    }
    Ok(out)
}

fn solve_name(pkey: &str) -> String {
    mangled("s", pkey)
}

fn mangled(prefix: &str, pkey: &str) -> String {
    quote_atom(&format!("${prefix} {pkey}"))
}

fn mangled_clause(prefix: &str, pkey: &str, clause: usize) -> String {
    quote_atom(&format!("${prefix} {pkey}.{clause}"))
}

fn mangled_goal(prefix: &str, pkey: &str, clause: usize, goal: usize) -> String {
    quote_atom(&format!("${prefix} {pkey}.{clause}.{goal}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    #[test]
    fn append_transformed_analysis_runs() {
        let program =
            parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).").unwrap();
        let t = TransformedAnalyzer::build(&program, "app", &["glist", "glist", "var"])
            .unwrap_or_else(|e| {
                let src = TransformedAnalyzer::generated_source(
                    &program,
                    "app",
                    &["glist", "glist", "var"],
                );
                panic!("{e}\n---\n{}", src.unwrap_or_default())
            });
        let run = t.run().unwrap();
        assert!(run.succeeded);
        assert!(run.steps > 500);
    }

    #[test]
    fn transformed_matches_meta_interpreter_on_suite_shapes() {
        // Both hosted styles must complete on representative programs.
        for src in [
            "nrev([], []). nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R). \
             app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R). \
             main :- nrev([1, 2, 3], _).",
            "p(X) :- (q(X) -> r(X) ; s(X)). q(1). r(1). s(2). main :- p(_).",
            "count([], 0). count([_|T], N) :- count(T, M), N is M + 1. \
             main :- count([a, b], _).",
        ] {
            let program = parse_program(src).unwrap();
            let t = TransformedAnalyzer::build(&program, "main", &[]).unwrap();
            let run = t.run().unwrap();
            assert!(run.succeeded, "{src}");
            let h = crate::HostedAnalyzer::build(&program, "main", &[]).unwrap();
            let hrun = h.run().unwrap();
            assert!(hrun.succeeded, "{src}");
            // Specialization removes the interpretive layer, so the
            // transformed analysis must execute fewer machine steps.
            assert!(
                run.steps < hrun.steps,
                "{src}: transformed {} vs hosted {}",
                run.steps,
                hrun.steps
            );
        }
    }

    #[test]
    fn generated_source_is_specialized() {
        let program = parse_program("p(1). p(2).").unwrap();
        let src = TransformedAnalyzer::generated_source(&program, "p", &["var"]).unwrap();
        assert!(src.contains("'$s p/1'"), "{src}");
        assert!(src.contains("'$t p/1.0'"), "{src}");
        assert!(src.contains("'$t p/1.1'"), "{src}");
        assert!(
            !src.contains("clauses("),
            "no interpretive clause data: {src}"
        );
    }
}
