% The meta-interpreting driver: interprets the object program
% supplied as clauses/2 facts, using the shared runtime.

% ---- driver: iterate to the least fixpoint ----

run(P, Args) :- iterate(P, Args, [], _).

iterate(P, Args, E0, E) :-
    reset_explored(E0, E1),
    solve_call(P, Args, E1, E2, 0, Ch, _),
    ( Ch =:= 0 -> E = E2 ; iterate(P, Args, E2, E) ).


% ---- the reinterpreted call (cf. the paper's Figure 5) ----

solve_call(P, Args, E0, E, Ch0, Ch, Res) :-
    find_entry(E0, P, Args, F),
    ( F = found(S, y) ->
        E = E0, Ch = Ch0, res_of(S, Res)
    ; F = found(_, n) ->
        mark_explored(E0, P, Args, E1),
        explore_pred(P, Args, E1, E, Ch0, Ch, Res)
    ;   insert_entry(E0, P, Args, E1),
        explore_pred(P, Args, E1, E, Ch0, Ch, Res)
    ).

explore_pred(P, Args, E0, E, Ch0, Ch, Res) :-
    clauses(P, Cs),
    explore(Cs, P, Args, E0, E1, Ch0, Ch),
    find_entry(E1, P, Args, found(S, _)),
    res_of(S, Res),
    E = E1.

explore([], _, _, E, E, Ch, Ch).
explore([cl(H, B)|Cs], P, Args, E0, E, Ch0, Ch) :-
    try_clause(H, B, P, Args, E0, E1, Ch0, Ch1),
    explore(Cs, P, Args, E1, E, Ch1, Ch).

try_clause(H, B, P, Args, E0, E, Ch0, Ch) :-
    ( aunify_args(H, Args, [], S1) ->
        run_goals(B, S1, E0, E1, Ch0, Ch1, R),
        ( R = yes(S2) ->
            abstract_args(H, S2, Types),
            update_succ(E1, P, Args, Types, E, Ch1, Ch)
        ; E = E1, Ch = Ch1 )
    ; E = E0, Ch = Ch0 ).

run_goals([], S, E, E, Ch, Ch, yes(S)).
run_goals([G|Gs], S0, E0, E, Ch0, Ch, R) :-
    run_goal(G, S0, E0, E1, Ch0, Ch1, R1),
    ( R1 = yes(S1) -> run_goals(Gs, S1, E1, E, Ch1, Ch, R)
    ; E = E1, Ch = Ch1, R = no ).

run_goal(cut, S, E, E, Ch, Ch, yes(S)).
run_goal(bi(B, Args), S0, E, E, Ch, Ch, R) :-
    ( abuiltin(B, Args, S0, S1) -> R = yes(S1) ; R = no ).
run_goal(call(P, Args), S0, E0, E, Ch0, Ch, R) :-
    abstract_args(Args, S0, Types),
    solve_call(P, Types, E0, E, Ch0, Ch, R1),
    ( R1 = some(Succ) ->
        ( apply_succ(Args, Succ, S0, S1) -> R = yes(S1) ; R = no )
    ; R = no ).

