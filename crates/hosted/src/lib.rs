//! The Prolog-hosted analyzer: the paper's comparator, reconstructed.
//!
//! The analyzers the paper measures against (Aquarius under Quintus,
//! Debray-Warren, Taylor's) were Prolog programs analyzing Prolog
//! programs. This crate reproduces that setting *end to end*:
//!
//! 1. the object program is normalized (same front-end as the compiled
//!    analyzer) and translated into first-order facts
//!    (`clauses('p/2', [cl(HeadArgs, Goals), …]).`);
//! 2. a fixed Prolog framework (`framework.pl`) implements the abstract
//!    interpreter — an extension-table-driven meta-interpreter over a
//!    structure-aware domain
//!    (`any/var/g/nv/const/atom/int/at(A)/list(T)/str(F, …)`, no aliasing
//!    component), with the table threaded as a linear list;
//! 3. facts + framework are compiled by the workspace WAM compiler and
//!    **executed by the concrete WAM runtime** — the analysis runs *on*
//!    Prolog, exactly as in 1992.
//!
//! The Table 1 harness times `HostedAnalyzer::run` against
//! `awam_core::Analyzer` to regenerate the paper's speed-up column. The
//! hosted domain is slightly simpler than the compiled analyzer's (no
//! aliasing component), which only biases the measured speed-up
//! *downwards* — the same conservative direction the paper notes for the
//! Aquarius comparison.
//!
//! # Examples
//!
//! ```
//! use hosted::HostedAnalyzer;
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let hosted = HostedAnalyzer::build(&program, "app", &["glist", "glist", "var"])?;
//! let run = hosted.run()?;
//! assert!(run.succeeded);
//! assert!(run.steps > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod transform;

pub use transform::TransformedAnalyzer;

use prolog_syntax::{parse_program, Program, Term};
use std::fmt;
use wam::builtins::Builtin;
use wam::norm::{normalize_program, Goal, NormProgram};
use wam::CompiledProgram;
use wam_machine::Machine;

/// The shared analysis runtime (domain + extension-table operations).
pub const RUNTIME: &str = include_str!("runtime.pl");

/// The meta-interpreting driver (uses [`RUNTIME`]).
pub const INTERP: &str = include_str!("interp.pl");

/// An error building or running the hosted analyzer.
#[derive(Debug)]
pub enum HostedError {
    /// Object-program normalization failed.
    Norm(String),
    /// The generated analysis program failed to parse (a bug in the
    /// generator).
    Parse(String),
    /// The generated analysis program failed to compile.
    Compile(String),
    /// The analysis run hit a machine error.
    Run(String),
    /// An entry spec string was not understood.
    BadSpec(String),
}

impl fmt::Display for HostedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostedError::Norm(e) => write!(f, "normalization: {e}"),
            HostedError::Parse(e) => write!(f, "generated program does not parse: {e}"),
            HostedError::Compile(e) => write!(f, "generated program does not compile: {e}"),
            HostedError::Run(e) => write!(f, "hosted analysis failed: {e}"),
            HostedError::BadSpec(s) => write!(f, "unrecognized entry spec `{s}`"),
        }
    }
}

impl std::error::Error for HostedError {}

/// Result of one hosted analysis run.
#[derive(Clone, Copy, Debug)]
pub struct HostedRun {
    /// Whether the analysis driver completed (it always should).
    pub succeeded: bool,
    /// Concrete WAM instructions executed by the hosted analysis.
    pub steps: u64,
}

/// A ready-to-run hosted analysis: framework + object facts, compiled for
/// the concrete WAM.
#[derive(Debug)]
pub struct HostedAnalyzer {
    compiled: CompiledProgram,
}

impl HostedAnalyzer {
    /// Translate `program` and build the analysis program for entry
    /// predicate `entry` with the given entry-pattern specs.
    ///
    /// # Errors
    ///
    /// See [`HostedError`].
    pub fn build(
        program: &Program,
        entry: &str,
        entry_specs: &[&str],
    ) -> Result<HostedAnalyzer, HostedError> {
        let norm = normalize_program(program).map_err(|e| HostedError::Norm(e.to_string()))?;
        let facts = generate_facts(&norm, entry, entry_specs)?;
        let source = format!("{facts}\n{INTERP}\n{RUNTIME}");
        let parsed = parse_program(&source).map_err(|e| HostedError::Parse(e.to_string()))?;
        let compiled =
            wam::compile_program(&parsed).map_err(|e| HostedError::Compile(e.to_string()))?;
        Ok(HostedAnalyzer { compiled })
    }

    /// The generated analysis program's source (facts + framework), for
    /// inspection.
    pub fn generated_source(
        program: &Program,
        entry: &str,
        specs: &[&str],
    ) -> Result<String, HostedError> {
        let norm = normalize_program(program).map_err(|e| HostedError::Norm(e.to_string()))?;
        let facts = generate_facts(&norm, entry, specs)?;
        Ok(format!("{facts}\n{INTERP}\n{RUNTIME}"))
    }

    /// Run the hosted analysis once on a fresh concrete machine.
    ///
    /// # Errors
    ///
    /// [`HostedError::Run`] on machine errors (step limit etc.).
    pub fn run(&self) -> Result<HostedRun, HostedError> {
        let mut machine = Machine::new(&self.compiled);
        machine.set_max_steps(5_000_000_000);
        let solution = machine
            .query_str("main")
            .map_err(|e| HostedError::Run(e.to_string()))?;
        Ok(HostedRun {
            succeeded: solution.is_some(),
            steps: machine.steps(),
        })
    }

    /// Static code size of the generated analysis program.
    pub fn code_size(&self) -> usize {
        self.compiled.code_size()
    }
}

// ----- object-program translation -----

fn generate_facts(
    norm: &NormProgram,
    entry: &str,
    entry_specs: &[&str],
) -> Result<String, HostedError> {
    let interner = &norm.interner;
    let mut out = String::new();
    // Entry point.
    let entry_types: Vec<String> = entry_specs
        .iter()
        .map(|s| spec_to_type(s))
        .collect::<Result<_, _>>()?;
    out.push_str(&format!(
        "main :- run({}, [{}]).\n\n",
        pred_atom(entry, entry_specs.len()),
        entry_types.join(", ")
    ));
    for (key, clauses) in &norm.predicates {
        let name = pred_atom(interner.resolve(key.name), key.arity);
        let mut cls = Vec::new();
        for clause in clauses {
            let head: Vec<String> = clause
                .head_args
                .iter()
                .map(|t| term_text(t, interner))
                .collect();
            let goals: Vec<String> = clause
                .goals
                .iter()
                .map(|g| goal_text(g, interner))
                .collect();
            cls.push(format!("cl([{}], [{}])", head.join(", "), goals.join(", ")));
        }
        out.push_str(&format!("clauses({name}, [{}]).\n", cls.join(",\n    ")));
    }
    Ok(out)
}

pub(crate) fn pred_atom(name: &str, arity: usize) -> String {
    quote_atom(&format!("{name}/{arity}"))
}

pub(crate) fn goal_text(goal: &Goal, interner: &prolog_syntax::Interner) -> String {
    match goal {
        Goal::Cut => "cut".to_owned(),
        Goal::Builtin(b, args) => {
            let args: Vec<String> = args.iter().map(|t| term_text(t, interner)).collect();
            format!("bi({}, [{}])", builtin_atom(*b), args.join(", "))
        }
        Goal::Call(key, args) => {
            let args: Vec<String> = args.iter().map(|t| term_text(t, interner)).collect();
            format!(
                "call({}, [{}])",
                pred_atom(interner.resolve(key.name), key.arity),
                args.join(", ")
            )
        }
    }
}

pub(crate) fn term_text(term: &Term, interner: &prolog_syntax::Interner) -> String {
    match term {
        Term::Var(v) => format!("v({})", v.0),
        Term::Int(i) => format!("i({i})"),
        Term::Atom(a) => format!("c({})", quote_atom(interner.resolve(*a))),
        Term::Struct(f, args) => {
            let args: Vec<String> = args.iter().map(|t| term_text(t, interner)).collect();
            format!(
                "s({}, [{}])",
                quote_atom(interner.resolve(*f)),
                args.join(", ")
            )
        }
    }
}

/// Quote an atom for the generated source. Operators and symbolic atoms
/// are always quoted so they parse unambiguously in argument position.
pub(crate) fn quote_atom(name: &str) -> String {
    let plain = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        name.to_owned()
    } else {
        let mut out = String::from("'");
        for c in name.chars() {
            match c {
                '\'' => out.push_str("\\'"),
                '\\' => out.push_str("\\\\"),
                other => out.push(other),
            }
        }
        out.push('\'');
        out
    }
}

pub(crate) fn builtin_atom(b: Builtin) -> &'static str {
    use Builtin::*;
    match b {
        Is => "is",
        Lt => "lt",
        Gt => "gt",
        Le => "le",
        Ge => "ge",
        ArithEq => "aeq",
        ArithNe => "ane",
        Unify => "unif",
        NotUnify => "nunif",
        StructEq => "seq",
        StructNe => "sne",
        TermLt => "tlt",
        TermGt => "tgt",
        TermLe => "tle",
        TermGe => "tge",
        True => "true",
        Fail => "fail",
        Var => "varp",
        Nonvar => "nonvarp",
        Atom => "atomp",
        Integer | Number => "intp",
        Atomic => "atomicp",
        Compound => "compoundp",
        FunctorOf => "functorp",
        Arg => "argp",
        Write => "write",
        Nl => "nl",
        Tab => "tab",
        Halt => "halt",
    }
}

pub(crate) fn spec_to_type(spec: &str) -> Result<String, HostedError> {
    let spec = spec.trim();
    if spec.parse::<i64>().is_ok() {
        return Ok("int".to_owned());
    }
    Ok(match spec {
        "any" => "any".into(),
        "nv" | "nonvar" => "nv".into(),
        "g" | "ground" => "g".into(),
        "const" => "const".into(),
        "atom" => "atom".into(),
        "int" | "integer" => "int".into(),
        "var" => "var".into(),
        "glist" => "list(g)".into(),
        "ilist" => "list(int)".into(),
        "nil" | "[]" => "at('[]')".into(),
        other => {
            let inner = other
                .strip_prefix("list(")
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| HostedError::BadSpec(other.to_owned()))?;
            format!("list({})", spec_to_type(inner)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_alone_parses_and_compiles() {
        // The framework references clauses/2, which must exist; add a stub.
        let source = format!("clauses(none, []).\n{INTERP}\n{RUNTIME}");
        let program = parse_program(&source).expect("framework parses");
        wam::compile_program(&program).expect("framework compiles");
    }

    #[test]
    fn append_hosted_analysis_runs() {
        let program =
            parse_program("app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).").unwrap();
        let hosted = HostedAnalyzer::build(&program, "app", &["glist", "glist", "var"]).unwrap();
        let run = hosted.run().unwrap();
        assert!(run.succeeded, "analysis driver completes");
        assert!(run.steps > 1000, "does real work: {} steps", run.steps);
    }

    #[test]
    fn generated_source_shape() {
        let program = parse_program("p(f(X), [a]) :- q(X), X < 3. q(1).").unwrap();
        let src = HostedAnalyzer::generated_source(&program, "p", &["any", "any"]).unwrap();
        assert!(src.contains("main :- run('p/2', [any, any])"), "{src}");
        assert!(src.contains("clauses('p/2'"), "{src}");
        assert!(
            src.contains("s(f, [v(0)])") || src.contains("s('f', [v(0)])"),
            "{src}"
        );
        assert!(src.contains("bi(lt"), "{src}");
        assert!(src.contains("s('.', [c(a), c('[]')])"), "{src}");
    }

    #[test]
    fn recursive_program_reaches_fixpoint() {
        let program = parse_program(
            "
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
            app([], L, L).
            app([H|T], L, [H|R]) :- app(T, L, R).
            ",
        )
        .unwrap();
        let hosted = HostedAnalyzer::build(&program, "nrev", &["glist", "var"]).unwrap();
        let run = hosted.run().unwrap();
        assert!(run.succeeded);
    }

    #[test]
    fn specs_translate() {
        assert_eq!(spec_to_type("glist").unwrap(), "list(g)");
        assert_eq!(spec_to_type("list(list(int))").unwrap(), "list(list(int))");
        assert!(spec_to_type("wibble").is_err());
    }
}
