//! The baseline's abstract term store: a node arena with value-trailed
//! binding, general abstract unification against source terms, and
//! pattern extraction/materialization.
//!
//! This mirrors what a Prolog-hosted analyzer keeps in its interpreted
//! term representation; nothing here is specialized per program point.

use absdom::{AbsLeaf, NodeId, PNode, Pattern};
use awam_exec::{TrailMark, ValueTrail};
use prolog_syntax::{Symbol, Term};
use std::collections::HashMap;

/// Index into the store.
pub type Ref = usize;

/// One abstract store node.
#[derive(Clone, PartialEq, Debug)]
pub enum BNode {
    /// An unbound (free) variable.
    Free,
    /// Forwarding pointer (created by binding).
    Bound(Ref),
    /// An instantiable abstract leaf (never `var` — that is `Free`).
    Leaf(AbsLeaf),
    /// `α-list`; the element reference is an unaliased type subgraph.
    ListOf(Ref),
    /// A specific atom.
    Atom(Symbol),
    /// A specific integer.
    Int(i64),
    /// A compound term.
    Struct(Symbol, Vec<Ref>),
}

/// The abstract store.
#[derive(Debug, Default)]
pub struct Store {
    nodes: Vec<BNode>,
    /// The substrate's value-trail discipline over the node arena.
    trail: ValueTrail<BNode>,
    /// Number of unification steps performed (cost accounting).
    pub unify_steps: u64,
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Current trail mark, for later [`Store::undo_to`].
    pub fn mark(&self) -> TrailMark {
        self.trail.mark(self.nodes.len())
    }

    /// Undo bindings and allocations past `mark`.
    pub fn undo_to(&mut self, mark: TrailMark) {
        self.trail.undo_to(mark, &mut self.nodes);
    }

    /// Allocate a node.
    pub fn alloc(&mut self, node: BNode) -> Ref {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Allocate a fresh free variable.
    pub fn fresh(&mut self) -> Ref {
        self.alloc(BNode::Free)
    }

    fn bind(&mut self, r: Ref, node: BNode) {
        self.trail.record(r, self.nodes[r].clone());
        self.nodes[r] = node;
    }

    /// Narrow a node back to a definitely-free variable (used by the
    /// `var/1` type test on an `any`-typed node; trailed like any binding).
    pub fn narrow_free(&mut self, r: Ref) {
        let rr = self.resolve(r);
        self.bind(rr, BNode::Free);
    }

    /// Follow `Bound` chains.
    pub fn resolve(&self, mut r: Ref) -> Ref {
        while let BNode::Bound(next) = self.nodes[r] {
            r = next;
        }
        r
    }

    /// The representative node for `r`.
    pub fn node(&self, r: Ref) -> &BNode {
        &self.nodes[self.resolve(r)]
    }

    // ----- building store terms from source terms (clause renaming) -----

    /// Build the store representation of a source term, renaming clause
    /// variables through `frame` (one slot per clause variable).
    pub fn build(&mut self, term: &Term, frame: &mut [Option<Ref>]) -> Ref {
        match term {
            Term::Var(v) => {
                let slot = &mut frame[v.index()];
                match slot {
                    Some(r) => *r,
                    None => {
                        let r = self.fresh();
                        *slot = Some(r);
                        r
                    }
                }
            }
            Term::Int(i) => self.alloc(BNode::Int(*i)),
            Term::Atom(a) => self.alloc(BNode::Atom(*a)),
            Term::Struct(f, args) => {
                let children: Vec<Ref> = args.iter().map(|a| self.build(a, frame)).collect();
                self.alloc(BNode::Struct(*f, children))
            }
        }
    }

    // ----- general abstract unification -----

    /// Unify a source term (under `frame`) with a store node — the general
    /// head-unification procedure an interpreter runs for every argument.
    pub fn unify_term(&mut self, term: &Term, r: Ref, frame: &mut [Option<Ref>]) -> bool {
        self.unify_steps += 1;
        match term {
            Term::Var(v) => {
                let slot = &mut frame[v.index()];
                match *slot {
                    Some(existing) => self.unify(existing, r),
                    None => {
                        *slot = Some(r);
                        true
                    }
                }
            }
            Term::Int(i) => self.unify_with_int(*i, r),
            Term::Atom(a) => self.unify_with_atom(*a, r),
            Term::Struct(f, args) => {
                let (f, arity) = (*f, args.len());
                match self.node(self.resolve(r)).clone() {
                    BNode::Free => {
                        let t = self.build(term, frame);
                        let rr = self.resolve(r);
                        self.bind(rr, BNode::Bound(t));
                        true
                    }
                    BNode::Struct(g, children) => {
                        if g != f || children.len() != arity {
                            return false;
                        }
                        args.iter()
                            .zip(children)
                            .all(|(a, c)| self.unify_term(a, c, frame))
                    }
                    BNode::Leaf(l) => {
                        if !(l.admits_struct() || (is_cons(f, arity) && l.admits_list())) {
                            return false;
                        }
                        // Complex-term instantiation: materialize an
                        // instance and recurse.
                        let child = l.instance_child();
                        let rr = self.resolve(r);
                        let children: Vec<Ref> =
                            (0..arity).map(|_| self.alloc_child(child)).collect();
                        self.bind(rr, BNode::Struct(f, children.clone()));
                        args.iter()
                            .zip(children)
                            .all(|(a, c)| self.unify_term(a, c, frame))
                    }
                    BNode::ListOf(e) => {
                        if !is_cons(f, arity) {
                            return false;
                        }
                        let rr = self.resolve(r);
                        let car = self.copy_type(e);
                        let elem = self.copy_type(e);
                        let cdr = self.alloc(BNode::ListOf(elem));
                        self.bind(rr, BNode::Struct(f, vec![car, cdr]));
                        self.unify_term(&args[0], car, frame)
                            && self.unify_term(&args[1], cdr, frame)
                    }
                    BNode::Atom(_) | BNode::Int(_) => false,
                    BNode::Bound(_) => unreachable!("resolved"),
                }
            }
        }
    }

    fn alloc_child(&mut self, child: AbsLeaf) -> Ref {
        if child == AbsLeaf::Var {
            self.fresh()
        } else {
            self.alloc(BNode::Leaf(child))
        }
    }

    fn unify_with_atom(&mut self, a: Symbol, r: Ref) -> bool {
        let rr = self.resolve(r);
        match self.nodes[rr].clone() {
            BNode::Free => {
                self.bind(rr, BNode::Atom(a));
                true
            }
            BNode::Atom(b) => a == b,
            BNode::Leaf(l) if l.admits_atom() => {
                self.bind(rr, BNode::Atom(a));
                true
            }
            BNode::ListOf(_) if a == absdom::nil_symbol() => {
                self.bind(rr, BNode::Atom(a));
                true
            }
            _ => false,
        }
    }

    fn unify_with_int(&mut self, i: i64, r: Ref) -> bool {
        let rr = self.resolve(r);
        match self.nodes[rr].clone() {
            BNode::Free => {
                self.bind(rr, BNode::Int(i));
                true
            }
            BNode::Int(j) => i == j,
            BNode::Leaf(l) if l.admits_integer() => {
                self.bind(rr, BNode::Int(i));
                true
            }
            _ => false,
        }
    }

    /// Node-to-node abstract unification.
    pub fn unify(&mut self, a: Ref, b: Ref) -> bool {
        self.unify_steps += 1;
        let (ra, rb) = (self.resolve(a), self.resolve(b));
        if ra == rb {
            return true;
        }
        let (na, nb) = (self.nodes[ra].clone(), self.nodes[rb].clone());
        match (na, nb) {
            (BNode::Free, _) => {
                self.bind(ra, BNode::Bound(rb));
                true
            }
            (_, BNode::Free) => {
                self.bind(rb, BNode::Bound(ra));
                true
            }
            (BNode::Leaf(t1), BNode::Leaf(t2)) => match t1.unify(t2) {
                None => false,
                Some(t) => {
                    if t != t1 {
                        self.bind(ra, BNode::Leaf(t));
                    }
                    self.bind(rb, BNode::Bound(ra));
                    true
                }
            },
            (BNode::Leaf(l), BNode::Atom(s)) | (BNode::Atom(s), BNode::Leaf(l)) => {
                let target = if matches!(self.nodes[ra], BNode::Leaf(_)) {
                    ra
                } else {
                    rb
                };
                if l.admits_atom() {
                    self.bind(target, BNode::Atom(s));
                    true
                } else {
                    false
                }
            }
            (BNode::Leaf(l), BNode::Int(i)) | (BNode::Int(i), BNode::Leaf(l)) => {
                let target = if matches!(self.nodes[ra], BNode::Leaf(_)) {
                    ra
                } else {
                    rb
                };
                if l.admits_integer() {
                    self.bind(target, BNode::Int(i));
                    true
                } else {
                    false
                }
            }
            (BNode::Leaf(l), BNode::Struct(f, children))
            | (BNode::Struct(f, children), BNode::Leaf(l)) => {
                let (leaf_ref, str_ref) = if matches!(self.nodes[ra], BNode::Leaf(_)) {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                if !(l.admits_struct() || (is_cons(f, children.len()) && l.admits_list())) {
                    return false;
                }
                self.bind(leaf_ref, BNode::Bound(str_ref));
                let child = l.instance_child();
                children.iter().all(|&c| self.constrain(c, child))
            }
            (BNode::Leaf(l), BNode::ListOf(e)) | (BNode::ListOf(e), BNode::Leaf(l)) => {
                let (leaf_ref, list_ref) = if matches!(self.nodes[ra], BNode::Leaf(_)) {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                match l {
                    AbsLeaf::Any | AbsLeaf::NonVar | AbsLeaf::Var => {
                        self.bind(leaf_ref, BNode::Bound(list_ref));
                        true
                    }
                    AbsLeaf::Ground => {
                        if !self.constrain(e, AbsLeaf::Ground) {
                            return false;
                        }
                        self.bind(leaf_ref, BNode::Bound(list_ref));
                        true
                    }
                    AbsLeaf::Const | AbsLeaf::Atom => {
                        let nil = BNode::Atom(absdom::nil_symbol());
                        self.bind(list_ref, nil.clone());
                        self.bind(leaf_ref, BNode::Bound(list_ref));
                        true
                    }
                    AbsLeaf::Integer => false,
                }
            }
            (BNode::ListOf(e1), BNode::ListOf(e2)) => {
                // list(α) ⊓ list(β): when the element types clash the
                // intersection is still {[]}.
                let mark = self.mark();
                let c1 = self.copy_type(e1);
                let c2 = self.copy_type(e2);
                if self.unify(c1, c2) {
                    self.bind(ra, BNode::ListOf(c1));
                } else {
                    self.undo_to(mark);
                    self.bind(ra, BNode::Atom(absdom::nil_symbol()));
                }
                self.bind(rb, BNode::Bound(ra));
                true
            }
            (BNode::ListOf(e), BNode::Struct(f, children))
            | (BNode::Struct(f, children), BNode::ListOf(e)) => {
                let (list_ref, str_ref) = if matches!(self.nodes[ra], BNode::ListOf(_)) {
                    (ra, rb)
                } else {
                    (rb, ra)
                };
                if !is_cons(f, children.len()) {
                    return false;
                }
                let car_type = self.copy_type(e);
                let elem = self.copy_type(e);
                let cdr_type = self.alloc(BNode::ListOf(elem));
                self.bind(list_ref, BNode::Bound(str_ref));
                self.unify(children[0], car_type) && self.unify(children[1], cdr_type)
            }
            (BNode::ListOf(e), BNode::Atom(s)) | (BNode::Atom(s), BNode::ListOf(e)) => {
                let _ = e;
                let list_ref = if matches!(self.nodes[ra], BNode::ListOf(_)) {
                    ra
                } else {
                    rb
                };
                if s == absdom::nil_symbol() {
                    self.bind(list_ref, BNode::Atom(s));
                    true
                } else {
                    false
                }
            }
            (BNode::Atom(x), BNode::Atom(y)) => x == y,
            (BNode::Int(x), BNode::Int(y)) => x == y,
            (BNode::Struct(f, xs), BNode::Struct(g, ys)) => {
                f == g && xs.len() == ys.len() && xs.iter().zip(ys).all(|(&x, y)| self.unify(x, y))
            }
            _ => false,
        }
    }

    /// Constrain a node to the meet with a leaf type.
    pub fn constrain(&mut self, r: Ref, leaf: AbsLeaf) -> bool {
        if leaf == AbsLeaf::Any || leaf == AbsLeaf::Var {
            return true;
        }
        let rr = self.resolve(r);
        match self.nodes[rr].clone() {
            BNode::Free => {
                self.bind(rr, BNode::Leaf(leaf));
                true
            }
            BNode::Leaf(t) => match t.unify(leaf) {
                None => false,
                Some(new) => {
                    if new != t {
                        self.bind(rr, BNode::Leaf(new));
                    }
                    true
                }
            },
            BNode::ListOf(e) => match leaf {
                AbsLeaf::NonVar => true,
                AbsLeaf::Ground => self.constrain(e, AbsLeaf::Ground),
                AbsLeaf::Const | AbsLeaf::Atom => {
                    self.bind(rr, BNode::Atom(absdom::nil_symbol()));
                    true
                }
                AbsLeaf::Integer => false,
                AbsLeaf::Any | AbsLeaf::Var => true,
            },
            BNode::Atom(_) => leaf.admits_atom(),
            BNode::Int(_) => leaf.admits_integer(),
            BNode::Struct(f, children) => {
                if !(leaf.admits_struct() || (is_cons(f, children.len()) && leaf.admits_list())) {
                    return false;
                }
                let child = if leaf == AbsLeaf::Ground {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::Any
                };
                children.iter().all(|&c| self.constrain(c, child))
            }
            BNode::Bound(_) => unreachable!("resolved"),
        }
    }

    fn copy_type(&mut self, r: Ref) -> Ref {
        let rr = self.resolve(r);
        match self.nodes[rr].clone() {
            BNode::Free => self.fresh(),
            BNode::Leaf(l) => self.alloc(BNode::Leaf(l)),
            BNode::Atom(a) => self.alloc(BNode::Atom(a)),
            BNode::Int(i) => self.alloc(BNode::Int(i)),
            BNode::ListOf(e) => {
                let c = self.copy_type(e);
                self.alloc(BNode::ListOf(c))
            }
            BNode::Struct(f, children) => {
                let copies: Vec<Ref> = children.iter().map(|&c| self.copy_type(c)).collect();
                self.alloc(BNode::Struct(f, copies))
            }
            BNode::Bound(_) => unreachable!("resolved"),
        }
    }

    // ----- pattern extraction / materialization -----

    /// Extract the canonical pattern of the given roots at `depth_k`.
    pub fn extract(&self, roots: &[Ref], depth_k: usize) -> Pattern {
        let mut nodes = Vec::new();
        let mut map: HashMap<Ref, NodeId> = HashMap::new();
        let ids = roots
            .iter()
            .map(|&r| self.extract_node(r, 0, depth_k, &mut nodes, &mut map))
            .collect();
        Pattern::new(nodes, ids)
    }

    fn extract_node(
        &self,
        r: Ref,
        depth: usize,
        depth_k: usize,
        nodes: &mut Vec<PNode>,
        map: &mut HashMap<Ref, NodeId>,
    ) -> NodeId {
        let rr = self.resolve(r);
        if let Some(&id) = map.get(&rr) {
            return id;
        }
        if depth >= depth_k {
            let leaf = self.summarize(rr, &mut Vec::new());
            let leaf = if leaf == AbsLeaf::Var {
                AbsLeaf::Any
            } else {
                leaf
            };
            nodes.push(PNode::Leaf(leaf));
            return nodes.len() - 1;
        }
        let push = |nodes: &mut Vec<PNode>, n: PNode| {
            nodes.push(n);
            nodes.len() - 1
        };
        match self.nodes[rr].clone() {
            BNode::Free => {
                let id = push(nodes, PNode::Leaf(AbsLeaf::Var));
                map.insert(rr, id);
                id
            }
            BNode::Leaf(l) => {
                let id = push(nodes, PNode::Leaf(l));
                map.insert(rr, id);
                id
            }
            BNode::Atom(a) => push(nodes, PNode::Atom(a)),
            BNode::Int(i) => push(nodes, PNode::Int(i)),
            BNode::ListOf(e) => {
                let id = push(nodes, PNode::Leaf(AbsLeaf::Any)); // placeholder
                map.insert(rr, id);
                let elem = self.extract_node(e, depth + 1, depth_k, nodes, map);
                nodes[id] = PNode::List(elem);
                id
            }
            BNode::Struct(f, children) => {
                let id = push(nodes, PNode::Leaf(AbsLeaf::Any)); // placeholder
                map.insert(rr, id);
                let args = children
                    .iter()
                    .map(|&c| self.extract_node(c, depth + 1, depth_k, nodes, map))
                    .collect();
                nodes[id] = PNode::Struct(f, args);
                id
            }
            BNode::Bound(_) => unreachable!("resolved"),
        }
    }

    fn summarize(&self, r: Ref, visiting: &mut Vec<Ref>) -> AbsLeaf {
        let rr = self.resolve(r);
        if visiting.contains(&rr) {
            return AbsLeaf::NonVar;
        }
        match self.nodes[rr].clone() {
            BNode::Free => AbsLeaf::Var,
            BNode::Leaf(l) => l,
            BNode::Atom(_) | BNode::Int(_) => AbsLeaf::Ground,
            BNode::ListOf(e) => {
                visiting.push(rr);
                let g = self.summarize(e, visiting).is_ground();
                visiting.pop();
                if g {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::NonVar
                }
            }
            BNode::Struct(_, children) => {
                visiting.push(rr);
                let g = children
                    .iter()
                    .all(|&c| self.summarize(c, visiting).is_ground());
                visiting.pop();
                if g {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::NonVar
                }
            }
            BNode::Bound(_) => unreachable!("resolved"),
        }
    }

    /// Materialize `pattern` into fresh store nodes, one per root.
    pub fn materialize(&mut self, pattern: &Pattern) -> Vec<Ref> {
        let mut done: HashMap<NodeId, Ref> = HashMap::new();
        (0..pattern.arity())
            .map(|i| self.materialize_node(pattern, pattern.root(i), &mut done))
            .collect()
    }

    fn materialize_node(
        &mut self,
        pattern: &Pattern,
        id: NodeId,
        done: &mut HashMap<NodeId, Ref>,
    ) -> Ref {
        if let Some(&r) = done.get(&id) {
            return r;
        }
        let r = match pattern.node(id) {
            PNode::Leaf(AbsLeaf::Var) => self.fresh(),
            PNode::Leaf(l) => self.alloc(BNode::Leaf(*l)),
            PNode::Atom(a) => self.alloc(BNode::Atom(*a)),
            PNode::Int(i) => self.alloc(BNode::Int(*i)),
            PNode::List(e) => {
                let r = self.alloc(BNode::Free); // placeholder
                done.insert(id, r);
                let elem = self.materialize_node(pattern, *e, done);
                self.nodes[r] = BNode::ListOf(elem);
                return r;
            }
            PNode::Struct(f, args) => {
                let r = self.alloc(BNode::Free); // placeholder
                done.insert(id, r);
                let children: Vec<Ref> = args
                    .iter()
                    .map(|&a| self.materialize_node(pattern, a, done))
                    .collect();
                self.nodes[r] = BNode::Struct(*f, children);
                return r;
            }
        };
        done.insert(id, r);
        r
    }
}

fn is_cons(f: Symbol, arity: usize) -> bool {
    absdom::is_dot_symbol(f) && arity == 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(specs: &[&str]) -> Pattern {
        Pattern::from_spec(specs).unwrap()
    }

    #[test]
    fn materialize_extract_round_trip() {
        for spec in [
            vec!["any", "var"],
            vec!["glist"],
            vec!["atom", "int", "list(any)"],
        ] {
            let p = pat(&spec);
            let mut store = Store::new();
            let roots = store.materialize(&p);
            assert_eq!(store.extract(&roots, 6), p, "{spec:?}");
        }
    }

    #[test]
    fn unify_term_against_leaf() {
        // Unifying source term [H|T] with glist gives H=g, T=glist.
        let (term, _, names) = prolog_syntax::parse_term("[H|T]").unwrap();
        let mut store = Store::new();
        let roots = store.materialize(&pat(&["glist"]));
        let mut frame = vec![None; names.len()];
        assert!(store.unify_term(&term, roots[0], &mut frame));
        let h = frame[0].unwrap();
        let t = frame[1].unwrap();
        assert_eq!(store.extract(&[h], 4), pat(&["g"]));
        assert_eq!(store.extract(&[t], 4), pat(&["glist"]));
    }

    #[test]
    fn undo_restores_state() {
        let mut store = Store::new();
        let roots = store.materialize(&pat(&["any"]));
        let mark = store.mark();
        assert!(store.constrain(roots[0], AbsLeaf::Ground));
        assert_eq!(store.extract(&roots, 4), pat(&["g"]));
        store.undo_to(mark);
        assert_eq!(store.extract(&roots, 4), pat(&["any"]));
    }

    #[test]
    fn aliasing_through_unify() {
        let mut store = Store::new();
        let x = store.fresh();
        let y = store.fresh();
        assert!(store.unify(x, y));
        assert!(store.constrain(x, AbsLeaf::Ground));
        let p = store.extract(&[x, y], 4);
        assert!(p.node_is_ground(p.root(1)), "alias must be grounded");
    }

    #[test]
    fn clash_fails() {
        let mut store = Store::new();
        let roots = store.materialize(&pat(&["atom"]));
        let mark = store.mark();
        assert!(!store.unify_with_int_public(5, roots[0]));
        store.undo_to(mark);
    }

    impl Store {
        fn unify_with_int_public(&mut self, i: i64, r: Ref) -> bool {
            self.unify_with_int(i, r)
        }
    }
}
