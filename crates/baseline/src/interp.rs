//! The meta-interpreter with extension-table control.

use crate::store::{Ref, Store};
use absdom::{AbsLeaf, Pattern, DEFAULT_TERM_DEPTH};
use awam_obs::TableStats;
use prolog_syntax::{PredKey, Program, Term};
use std::collections::HashMap;
use std::fmt;
use wam::builtins::Builtin;
use wam::norm::{normalize_program, Goal, NormClause, NormError, NormProgram};

/// An error produced by the baseline analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineError {
    /// Normalization failed (metacall etc.).
    Norm(String),
    /// Unknown entry predicate.
    UnknownPredicate {
        /// `name/arity` of the missing predicate.
        pred: String,
    },
    /// A goal calls an undefined predicate.
    UndefinedPredicate {
        /// `name/arity` of the missing predicate.
        pred: String,
    },
    /// Unrecognized entry pattern spec.
    BadSpec(String),
    /// The exploration recursion exceeded its safety bound.
    DepthLimit,
    /// The fixpoint iteration exceeded its safety bound.
    IterationLimit,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Norm(e) => write!(f, "{e}"),
            BaselineError::UnknownPredicate { pred } => {
                write!(f, "unknown entry predicate {pred}")
            }
            BaselineError::UndefinedPredicate { pred } => {
                write!(f, "call to undefined predicate {pred}")
            }
            BaselineError::BadSpec(s) => write!(f, "unrecognized pattern spec `{s}`"),
            BaselineError::DepthLimit => write!(f, "exploration depth limit exceeded"),
            BaselineError::IterationLimit => write!(f, "fixpoint iteration limit exceeded"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<NormError> for BaselineError {
    fn from(e: NormError) -> Self {
        BaselineError::Norm(e.to_string())
    }
}

/// Analysis result of one predicate.
#[derive(Debug, Clone)]
pub struct BaselinePred {
    /// `name/arity`.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// `(calling pattern, success pattern)` entries.
    pub entries: Vec<(Pattern, Option<Pattern>)>,
}

/// The result of a baseline analysis run.
#[derive(Debug, Clone)]
pub struct BaselineAnalysis {
    /// Per-predicate results (only predicates that were called).
    pub predicates: Vec<BaselinePred>,
    /// Global fixpoint iterations.
    pub iterations: u64,
    /// Goal reductions performed (the interpreter's unit of work).
    pub goals_executed: u64,
    /// Abstract unification steps performed.
    pub unify_steps: u64,
    /// Clause activations explored (head unifications attempted).
    pub clause_explorations: u64,
    /// Extension-table counters, mirroring the compiled analyzer's so the
    /// two control schemes compare one-to-one.
    pub table_stats: TableStats,
}

impl BaselineAnalysis {
    /// The analysis of `name/arity`, if reached.
    pub fn predicate(&self, name: &str, arity: usize) -> Option<&BaselinePred> {
        self.predicates
            .iter()
            .find(|p| p.name == format!("{name}/{arity}"))
    }
}

#[derive(Clone, Debug)]
struct EtEntry {
    call: Pattern,
    success: Option<Pattern>,
    explored_iter: u64,
}

/// The meta-interpreting analyzer.
///
/// See the [crate documentation](crate) for context and an example.
#[derive(Debug)]
pub struct BaselineAnalyzer {
    norm: NormProgram,
    pred_ids: HashMap<PredKey, usize>,
    depth_k: usize,
}

impl BaselineAnalyzer {
    /// Normalize `program` for interpretation.
    ///
    /// # Errors
    ///
    /// Propagates normalization errors (e.g. metacalls).
    pub fn new(program: &Program) -> Result<BaselineAnalyzer, BaselineError> {
        let norm = normalize_program(program)?;
        let pred_ids = norm
            .predicates
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (*k, i))
            .collect();
        Ok(BaselineAnalyzer {
            norm,
            pred_ids,
            depth_k: DEFAULT_TERM_DEPTH,
        })
    }

    /// Set the term-depth restriction.
    #[must_use]
    pub fn with_depth(mut self, depth_k: usize) -> BaselineAnalyzer {
        self.depth_k = depth_k;
        self
    }

    /// The interner (for display).
    pub fn interner(&self) -> &prolog_syntax::Interner {
        &self.norm.interner
    }

    /// Analyze from `name` with entry pattern given as spec strings.
    ///
    /// # Errors
    ///
    /// See [`BaselineError`].
    pub fn analyze_query(
        &mut self,
        name: &str,
        specs: &[&str],
    ) -> Result<BaselineAnalysis, BaselineError> {
        let entry =
            Pattern::from_spec(specs).ok_or_else(|| BaselineError::BadSpec(specs.join(", ")))?;
        self.analyze(name, &entry)
    }

    /// Analyze from `name` with the given entry calling pattern.
    ///
    /// # Errors
    ///
    /// See [`BaselineError`].
    pub fn analyze(
        &mut self,
        name: &str,
        entry: &Pattern,
    ) -> Result<BaselineAnalysis, BaselineError> {
        let sym = self.norm.interner.lookup(name);
        let pred = sym
            .and_then(|name| {
                self.pred_ids.get(&PredKey {
                    name,
                    arity: entry.arity(),
                })
            })
            .copied()
            .ok_or_else(|| BaselineError::UnknownPredicate {
                pred: format!("{name}/{}", entry.arity()),
            })?;
        let mut interp = Interp {
            norm: &self.norm,
            pred_ids: &self.pred_ids,
            store: Store::new(),
            table: vec![Vec::new(); self.norm.predicates.len()],
            iter: 0,
            changed: false,
            goals: 0,
            clause_explorations: 0,
            stats: TableStats::default(),
            depth_k: self.depth_k,
        };
        let iterations = interp.run_to_fixpoint(pred, entry)?;
        let mut predicates = Vec::new();
        for (i, (key, _)) in self.norm.predicates.iter().enumerate() {
            if interp.table[i].is_empty() {
                continue;
            }
            predicates.push(BaselinePred {
                name: key.display(&self.norm.interner),
                arity: key.arity,
                entries: interp.table[i]
                    .iter()
                    .map(|e| (e.call.clone(), e.success.clone()))
                    .collect(),
            });
        }
        Ok(BaselineAnalysis {
            predicates,
            iterations,
            goals_executed: interp.goals,
            unify_steps: interp.store.unify_steps,
            clause_explorations: interp.clause_explorations,
            table_stats: interp.stats,
        })
    }
}

struct Interp<'a> {
    norm: &'a NormProgram,
    pred_ids: &'a HashMap<PredKey, usize>,
    store: Store,
    table: Vec<Vec<EtEntry>>,
    iter: u64,
    changed: bool,
    goals: u64,
    clause_explorations: u64,
    stats: TableStats,
    depth_k: usize,
}

impl Interp<'_> {
    fn run_to_fixpoint(&mut self, pred: usize, entry: &Pattern) -> Result<u64, BaselineError> {
        const MAX_ITERS: u64 = 10_000;
        loop {
            self.iter += 1;
            if self.iter > MAX_ITERS {
                return Err(BaselineError::IterationLimit);
            }
            self.changed = false;
            self.store = Store::new();
            let roots = self.store.materialize(entry);
            self.solve(pred, &roots, 0)?;
            if !self.changed {
                return Ok(self.iter);
            }
        }
    }

    fn find_entry(&mut self, pred: usize, cp: &Pattern) -> Option<usize> {
        // Linear scan — the assert-database technique of [23, 17].
        self.stats.lookups += 1;
        let mut found = None;
        for (i, e) in self.table[pred].iter().enumerate() {
            self.stats.scan_steps += 1;
            if &e.call == cp {
                found = Some(i);
                break;
            }
        }
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    fn solve(&mut self, pred: usize, args: &[Ref], depth: usize) -> Result<bool, BaselineError> {
        if depth > 2_000 {
            return Err(BaselineError::DepthLimit);
        }
        let cp = self.store.extract(args, self.depth_k);
        let idx = match self.find_entry(pred, &cp) {
            Some(idx) => {
                let entry = &self.table[pred][idx];
                if entry.explored_iter == self.iter {
                    let success = entry.success.clone();
                    return Ok(match success {
                        Some(sp) => self.apply_success(args, &sp),
                        None => false,
                    });
                }
                self.table[pred][idx].explored_iter = self.iter;
                idx
            }
            None => {
                self.stats.inserts += 1;
                self.table[pred].push(EtEntry {
                    call: cp.clone(),
                    success: None,
                    explored_iter: self.iter,
                });
                self.table[pred].len() - 1
            }
        };

        let num_clauses = self.norm.predicates[pred].1.len();
        for ci in 0..num_clauses {
            self.clause_explorations += 1;
            let mark = self.store.mark();
            let roots = self.store.materialize(&cp);
            let ok = self.try_clause(pred, ci, &roots, depth)?;
            if ok {
                let sp = self.store.extract(&roots, self.depth_k);
                self.update_success(pred, idx, sp);
            }
            self.store.undo_to(mark);
        }

        let success = self.table[pred][idx].success.clone();
        match success {
            Some(sp) => Ok(self.apply_success(args, &sp)),
            None => Ok(false),
        }
    }

    fn try_clause(
        &mut self,
        pred: usize,
        ci: usize,
        roots: &[Ref],
        depth: usize,
    ) -> Result<bool, BaselineError> {
        // Clause renaming: a fresh variable frame per activation.
        let clause: &NormClause = &self.norm.predicates[pred].1[ci];
        let num_vars = clause.num_vars.max(
            clause
                .head_args
                .iter()
                .chain(clause.goals.iter().flat_map(|g| g.args().iter()))
                .flat_map(Term::variables)
                .map(|v| v.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut frame: Vec<Option<Ref>> = vec![None; num_vars];
        // General head unification, argument by argument.
        let head_args = clause.head_args.clone();
        for (term, &root) in head_args.iter().zip(roots) {
            self.goals += 1;
            if !self.store.unify_term(term, root, &mut frame) {
                return Ok(false);
            }
        }
        // Body goals in order.
        let goals = clause.goals.clone();
        for goal in &goals {
            self.goals += 1;
            match goal {
                Goal::Cut => {} // sound over-approximation: true
                Goal::Builtin(b, args) => {
                    let refs: Vec<Ref> =
                        args.iter().map(|t| self.build_arg(t, &mut frame)).collect();
                    if !self.abstract_builtin(*b, &refs) {
                        return Ok(false);
                    }
                }
                Goal::Call(key, args) => {
                    let callee = *self.pred_ids.get(key).ok_or_else(|| {
                        BaselineError::UndefinedPredicate {
                            pred: key.display(&self.norm.interner),
                        }
                    })?;
                    let refs: Vec<Ref> =
                        args.iter().map(|t| self.build_arg(t, &mut frame)).collect();
                    if !self.solve(callee, &refs, depth + 1)? {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    fn build_arg(&mut self, term: &Term, frame: &mut [Option<Ref>]) -> Ref {
        self.store.build(term, frame)
    }

    fn apply_success(&mut self, args: &[Ref], sp: &Pattern) -> bool {
        let cells = self.store.materialize(sp);
        args.iter().zip(cells).all(|(&a, c)| self.store.unify(a, c))
    }

    fn update_success(&mut self, pred: usize, idx: usize, sp: Pattern) {
        self.stats.summary_updates += 1;
        let entry = &mut self.table[pred][idx];
        let new = match &entry.success {
            Some(old) => {
                let lubbed = old.lub(&sp);
                if &lubbed != old {
                    self.stats.lub_widenings += 1;
                }
                lubbed
            }
            None => sp,
        };
        if entry.success.as_ref() != Some(&new) {
            entry.success = Some(new);
            self.stats.version_bumps += 1;
            self.changed = true;
        }
    }

    fn abstract_builtin(&mut self, b: Builtin, args: &[Ref]) -> bool {
        use Builtin::*;
        let store = &mut self.store;
        match b {
            True | Nl | Halt | Write | Tab => true,
            Fail => false,
            Is => {
                if !store.constrain(args[1], AbsLeaf::Ground) {
                    return false;
                }
                let i = store.alloc(crate::store::BNode::Leaf(AbsLeaf::Integer));
                store.unify(args[0], i)
            }
            Lt | Gt | Le | Ge | ArithEq | ArithNe => {
                store.constrain(args[0], AbsLeaf::Ground)
                    && store.constrain(args[1], AbsLeaf::Ground)
            }
            Unify => store.unify(args[0], args[1]),
            NotUnify | StructEq | StructNe | TermLt | TermGt | TermLe | TermGe => true,
            Var => match store.node(args[0]).clone() {
                crate::store::BNode::Free => true,
                crate::store::BNode::Leaf(t) if t.meet(AbsLeaf::Var).is_some() => {
                    // `any ⊓ var = var`, which the store represents as a
                    // free node; narrow accordingly.
                    store.narrow_free(args[0]);
                    true
                }
                _ => false,
            },
            Nonvar => self.type_test(args[0], AbsLeaf::NonVar),
            Atom => self.type_test(args[0], AbsLeaf::Atom),
            Integer | Number => self.type_test(args[0], AbsLeaf::Integer),
            Atomic => self.type_test(args[0], AbsLeaf::Const),
            Compound => {
                matches!(
                    self.store.node(args[0]),
                    crate::store::BNode::Struct(..) | crate::store::BNode::ListOf(_)
                ) || matches!(
                    self.store.node(args[0]),
                    crate::store::BNode::Leaf(l) if l.admits_struct() || l.admits_list()
                )
            }
            FunctorOf => {
                let c = self.store.alloc(crate::store::BNode::Leaf(AbsLeaf::Const));
                let i = self
                    .store
                    .alloc(crate::store::BNode::Leaf(AbsLeaf::Integer));
                self.store.unify(args[1], c) && self.store.unify(args[2], i)
            }
            Arg => {
                let a = self.store.alloc(crate::store::BNode::Leaf(AbsLeaf::Any));
                self.store.unify(args[2], a)
            }
        }
    }

    fn type_test(&mut self, r: Ref, leaf: AbsLeaf) -> bool {
        match self.store.node(r) {
            crate::store::BNode::Free => false,
            _ => self.store.constrain(r, leaf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_program;

    fn analyze(src: &str, pred: &str, specs: &[&str]) -> BaselineAnalysis {
        let program = parse_program(src).unwrap();
        BaselineAnalyzer::new(&program)
            .unwrap()
            .analyze_query(pred, specs)
            .unwrap()
    }

    #[test]
    fn append_analysis() {
        let a = analyze(
            "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
            "app",
            &["glist", "glist", "var"],
        );
        let app = a.predicate("app", 3).unwrap();
        let (_, success) = &app.entries[0];
        let s = success.as_ref().unwrap();
        assert!(s.node_is_ground(s.root(2)));
    }

    #[test]
    fn nrev_terminates() {
        let a = analyze(
            "
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
            app([], L, L).
            app([H|T], L, [H|R]) :- app(T, L, R).
            ",
            "nrev",
            &["glist", "var"],
        );
        assert!(a.iterations < 10);
        assert!(a.goals_executed > 0);
        let nrev = a.predicate("nrev", 2).unwrap();
        let s = nrev.entries[0].1.as_ref().unwrap();
        assert!(s.node_is_ground(s.root(1)));
    }

    #[test]
    fn failure_detected() {
        let a = analyze("p(X) :- q(X), r(X). q(1). r(a).", "p", &["var"]);
        let p = a.predicate("p", 1).unwrap();
        assert!(p.entries[0].1.is_none());
    }

    #[test]
    fn unknown_pred_is_error() {
        let program = parse_program("p.").unwrap();
        let mut b = BaselineAnalyzer::new(&program).unwrap();
        assert!(b.analyze_query("q", &[]).is_err());
    }
}
