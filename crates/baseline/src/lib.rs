//! The meta-interpreting abstract analyzer — the comparator the paper
//! speeds up over.
//!
//! Prior to the paper, global dataflow analyzers for logic programs were
//! implemented *on top of Prolog*, either as meta-circular interpreters
//! ([6, 17] in the paper) or via program transformation ([5, 23]). This
//! crate is a faithful Rust transcription of the meta-interpreting
//! approach over the *same* abstract domain and the *same* extension-table
//! control scheme as `awam-core`:
//!
//! * it interprets **source clauses** directly — every head unification
//!   runs the general abstract unification procedure over the syntax tree
//!   (no specialization into get/unify instructions);
//! * every clause trial renames (copies) the clause into a fresh
//!   variable frame;
//! * goals are dispatched by inspecting term structure at run time.
//!
//! The analysis *results* are the same (both compute the least fixpoint
//! over the same domain — the test suite checks agreement); the point of
//! this crate is the **cost model**, which carries exactly the interpretive
//! overhead that compilation into the abstract WAM removes. Table 1's
//! speed-up column is `baseline time / awam-core time`.
//!
//! # Examples
//!
//! ```
//! use baseline::BaselineAnalyzer;
//! use prolog_syntax::parse_program;
//!
//! let program = parse_program(
//!     "app([], L, L). app([H|T], L, [H|R]) :- app(T, L, R).",
//! )?;
//! let mut analyzer = BaselineAnalyzer::new(&program)?;
//! let analysis = analyzer.analyze_query("app", &["glist", "glist", "var"])?;
//! assert!(analysis.predicate("app", 3).is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod interp;
pub mod store;

pub use interp::{BaselineAnalysis, BaselineAnalyzer, BaselineError, BaselinePred};
