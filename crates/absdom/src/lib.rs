//! The abstract domain of Tan & Lin (PLDI 1992), §3: simple types
//! (`any`, `nv`, `ground`, `const`, `atom`, `integer`, `var`), parametric
//! `α-list` and `struct(f/n, …)` types, and argument-tuple patterns with
//! definite-aliasing information.
//!
//! The domain is shared by the compiled analyzer (`awam-core`), which
//! manipulates its elements as instantiable heap cells, and by the
//! meta-interpreting baseline (`baseline`), which manipulates them as
//! pattern graphs directly.
//!
//! # Examples
//!
//! ```
//! use absdom::{AbsLeaf, Pattern};
//!
//! // s_unify(any, ground) = ground — §4.1 of the paper.
//! assert_eq!(AbsLeaf::Any.unify(AbsLeaf::Ground), Some(AbsLeaf::Ground));
//!
//! // Patterns are canonical: `glist` and `list(g)` are the same element.
//! let p = Pattern::from_spec(&["atom", "glist"]).unwrap();
//! assert_eq!(p, Pattern::from_spec(&["atom", "list(g)"]).unwrap());
//! ```

#![warn(missing_docs)]

pub mod intern;
pub mod leaf;
pub mod pattern;
pub mod weaken;

pub use intern::{FxHashMap, PatternId, PatternInterner, SessionInterner};
pub use leaf::AbsLeaf;
pub use pattern::{dot_symbol, is_dot_symbol, nil_symbol, LubScratch, NodeId, PNode, Pattern};
pub use weaken::DomainConfig;

/// The paper's term-depth restriction constant (§6): subterms at depth
/// `k` or greater are summarized by their primary approximation, trading
/// precision for guaranteed termination.
pub const DEFAULT_TERM_DEPTH: usize = 4;
