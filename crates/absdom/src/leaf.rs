//! The simple (non-parametric) abstract types and their lattice.
//!
//! These are the instantiable leaves of §3 of the paper:
//!
//! ```text
//!            any (⊤)
//!           /    \
//!         nv      var
//!          |
//!          g  (ground)
//!          |
//!        const
//!        /   \
//!     atom   integer
//! ```
//!
//! (`empty`, the bottom element, is represented by returning `None` from
//! [`AbsLeaf::meet`] — an abstract unification failure.)
//!
//! The parametric types — `α-list` and `struct(f/n, α₁…αₙ)` — live in
//! [`crate::pattern`] as graph nodes; this module provides the leaf-level
//! operations they bottom out in.

use std::fmt;

/// A simple abstract type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AbsLeaf {
    /// All terms (⊤).
    Any,
    /// All non-variable terms (`nv`).
    NonVar,
    /// All ground terms (`g`).
    Ground,
    /// All constants (atoms and integers).
    Const,
    /// All atoms (including `[]`).
    Atom,
    /// All integers.
    Integer,
    /// All (free) variables.
    Var,
}

impl AbsLeaf {
    /// Partial order: `self` ⊑ `other` (set inclusion of denotations).
    pub fn leq(self, other: AbsLeaf) -> bool {
        use AbsLeaf::*;
        if self == other || other == Any {
            return true;
        }
        matches!(
            (self, other),
            (Ground | Const | Atom | Integer, NonVar)
                | (Const | Atom | Integer, Ground)
                | (Atom | Integer, Const)
        )
    }

    /// Least upper bound.
    pub fn lub(self, other: AbsLeaf) -> AbsLeaf {
        use AbsLeaf::*;
        if self.leq(other) {
            return other;
        }
        if other.leq(self) {
            return self;
        }
        match (self, other) {
            (Atom, Integer) | (Integer, Atom) => Const,
            // Anything joined with Var that is not Var itself escapes to ⊤.
            (Var, _) | (_, Var) => Any,
            // Remaining incomparable pairs within the nonvar chain cannot
            // occur (the chain is total), but be safe.
            _ => Any,
        }
    }

    /// Greatest lower bound; `None` is the bottom element `empty`.
    pub fn meet(self, other: AbsLeaf) -> Option<AbsLeaf> {
        use AbsLeaf::*;
        if self.leq(other) {
            return Some(self);
        }
        if other.leq(self) {
            return Some(other);
        }
        match (self, other) {
            (Atom, Integer) | (Integer, Atom) => None,
            (Var, _) | (_, Var) => None,
            _ => None,
        }
    }

    /// The result type of abstractly unifying an instance of `self` with an
    /// instance of `other` (§4.1's `s_unify` on simple types).
    ///
    /// `var` acts as an identity: a free variable unifies with anything and
    /// takes its type. For all other pairs this is the lattice meet;
    /// `None` means the unification cannot succeed (`empty`).
    pub fn unify(self, other: AbsLeaf) -> Option<AbsLeaf> {
        use AbsLeaf::*;
        match (self, other) {
            (Var, t) | (t, Var) => Some(t),
            // `any` includes variables, which unify freely with the other
            // side; the most precise sound result is the other side's type
            // (a nonvar instance of `any` narrows to the meet, a var
            // instance takes the other type — join of those is `other`).
            (Any, t) | (t, Any) => Some(t),
            _ => self.meet(other),
        }
    }

    /// Whether every instance is ground.
    pub fn is_ground(self) -> bool {
        matches!(
            self,
            AbsLeaf::Ground | AbsLeaf::Const | AbsLeaf::Atom | AbsLeaf::Integer
        )
    }

    /// Whether the denoted set is closed under instantiation (binding a
    /// variable inside an instance keeps it in the set). Only `var` is
    /// not: binding a free variable leaves the set. Used for the
    /// aliasing-drop weakening rule in [`crate::pattern::Pattern::lub`].
    pub fn instantiation_closed(self) -> bool {
        self != AbsLeaf::Var
    }

    /// Can an instance be (or become, for `var`) a cons cell?
    pub fn admits_list(self) -> bool {
        use AbsLeaf::*;
        matches!(self, Any | NonVar | Ground | Var)
    }

    /// Can an instance be a non-list structure?
    pub fn admits_struct(self) -> bool {
        use AbsLeaf::*;
        matches!(self, Any | NonVar | Ground | Var)
    }

    /// Can an instance be an atom?
    pub fn admits_atom(self) -> bool {
        use AbsLeaf::*;
        matches!(self, Any | NonVar | Ground | Const | Atom | Var)
    }

    /// Can an instance be an integer?
    pub fn admits_integer(self) -> bool {
        use AbsLeaf::*;
        matches!(self, Any | NonVar | Ground | Const | Integer | Var)
    }

    /// The type of the arguments of a compound instance of `self`
    /// (the *complex-term instantiation* child type of §4.2):
    /// `ground` terms have `ground` arguments; a compound instance of
    /// `any`/`nv` has `any` arguments; a free variable that gets bound to a
    /// compound by unification acquires fresh free variables as arguments.
    ///
    /// # Panics
    ///
    /// Panics if `self` cannot be compound (`const`/`atom`/`integer`).
    pub fn instance_child(self) -> AbsLeaf {
        use AbsLeaf::*;
        match self {
            Ground => Ground,
            Any | NonVar => Any,
            Var => Var,
            Const | Atom | Integer => {
                panic!("constants have no compound instances")
            }
        }
    }

    /// The short display name used in reports (`g` for ground, `nv` for
    /// nonvar, `int` for integer — matching the paper's notation).
    pub fn name(self) -> &'static str {
        use AbsLeaf::*;
        match self {
            Any => "any",
            NonVar => "nv",
            Ground => "g",
            Const => "const",
            Atom => "atom",
            Integer => "int",
            Var => "var",
        }
    }

    /// All leaves, for exhaustive property tests.
    pub const ALL: [AbsLeaf; 7] = [
        AbsLeaf::Any,
        AbsLeaf::NonVar,
        AbsLeaf::Ground,
        AbsLeaf::Const,
        AbsLeaf::Atom,
        AbsLeaf::Integer,
        AbsLeaf::Var,
    ];
}

impl fmt::Display for AbsLeaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AbsLeaf::*;

    #[test]
    fn order_spot_checks() {
        assert!(Atom.leq(Const));
        assert!(Const.leq(Ground));
        assert!(Ground.leq(NonVar));
        assert!(NonVar.leq(Any));
        assert!(Var.leq(Any));
        assert!(!Var.leq(NonVar));
        assert!(!Atom.leq(Integer));
        assert!(!NonVar.leq(Ground));
    }

    #[test]
    fn lub_spot_checks() {
        assert_eq!(Atom.lub(Integer), Const);
        assert_eq!(Var.lub(Ground), Any);
        assert_eq!(Ground.lub(NonVar), NonVar);
        assert_eq!(Var.lub(Var), Var);
        assert_eq!(Any.lub(Atom), Any);
    }

    #[test]
    fn meet_spot_checks() {
        assert_eq!(Ground.meet(NonVar), Some(Ground));
        assert_eq!(Atom.meet(Integer), None);
        assert_eq!(Var.meet(NonVar), None);
        assert_eq!(Any.meet(Var), Some(Var));
        assert_eq!(Const.meet(Ground), Some(Const));
    }

    #[test]
    fn unify_examples_from_paper() {
        // s_unify(any, ground) = ground
        assert_eq!(Any.unify(Ground), Some(Ground));
        // a free variable takes the other side's type
        assert_eq!(Var.unify(Ground), Some(Ground));
        assert_eq!(Var.unify(Var), Some(Var));
        // atoms and integers clash
        assert_eq!(Atom.unify(Integer), None);
        // nonvar meets ground at ground
        assert_eq!(NonVar.unify(Ground), Some(Ground));
    }

    #[test]
    fn lattice_laws() {
        for &a in &AbsLeaf::ALL {
            assert!(a.leq(a), "reflexive {a}");
            assert_eq!(a.lub(a), a, "idempotent {a}");
            assert_eq!(a.meet(a), Some(a));
            for &b in &AbsLeaf::ALL {
                assert_eq!(a.lub(b), b.lub(a), "lub commutes {a} {b}");
                assert_eq!(a.meet(b), b.meet(a), "meet commutes {a} {b}");
                // lub is an upper bound
                assert!(a.leq(a.lub(b)));
                assert!(b.leq(a.lub(b)));
                // meet is a lower bound
                if let Some(m) = a.meet(b) {
                    assert!(m.leq(a));
                    assert!(m.leq(b));
                }
                // antisymmetry
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b);
                }
                for &c in &AbsLeaf::ALL {
                    assert_eq!(a.lub(b).lub(c), a.lub(b.lub(c)), "assoc {a} {b} {c}");
                    // transitivity
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c));
                    }
                }
            }
        }
    }

    #[test]
    fn unify_is_sound_wrt_meet_for_nonvar_pairs() {
        // For pairs not involving var/any, unify == meet.
        for &a in &[NonVar, Ground, Const, Atom, Integer] {
            for &b in &[NonVar, Ground, Const, Atom, Integer] {
                assert_eq!(a.unify(b), a.meet(b), "{a} {b}");
            }
        }
    }

    #[test]
    fn child_types() {
        assert_eq!(Ground.instance_child(), Ground);
        assert_eq!(Any.instance_child(), Any);
        assert_eq!(NonVar.instance_child(), Any);
        assert_eq!(Var.instance_child(), Var);
    }

    #[test]
    fn admits_tables() {
        assert!(Ground.admits_list());
        assert!(!Const.admits_list());
        assert!(Const.admits_atom());
        assert!(!Integer.admits_atom());
        assert!(Integer.admits_integer());
        assert!(Var.admits_struct());
    }
}
