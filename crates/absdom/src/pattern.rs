//! Calling/success patterns: abstract term graphs with aliasing.
//!
//! A [`Pattern`] describes a tuple of abstract terms (the arguments of a
//! call, or of a successful return). It is a small arena of [`PNode`]s
//! plus one root per argument; *shared* node ids encode **definite
//! aliasing** ("these positions hold the very same term"), which is the
//! machine-level form of the paper's "complete aliasing information".
//!
//! Patterns are kept **canonical** (nodes renumbered in first-visit DFS
//! order, ground subgraphs unshared) so that structural equality is
//! pattern equality — the extension table keys on this.
//!
//! # The lub and aliasing
//!
//! [`Pattern::lub`] is an n-way product construction: the result node for
//! a *group* of source nodes is shared exactly when the same group recurs,
//! so definite sharing survives the join only where it is present on both
//! sides. When one side's sharing is dropped, a `var` leaf may no longer
//! claim definite freeness (its alias might have been bound through the
//! other occurrence), so such leaves are weakened to `any` — `var` is the
//! only type not closed under instantiation. See DESIGN.md §3.4.

use crate::leaf::AbsLeaf;
use prolog_syntax::{Interner, Symbol, Term};
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its [`Pattern`].
pub type NodeId = usize;

/// One node of a pattern graph.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PNode {
    /// An instantiable simple abstract type.
    Leaf(AbsLeaf),
    /// A specific integer.
    Int(i64),
    /// A specific atom.
    Atom(Symbol),
    /// `struct(f/n, α₁…αₙ)`.
    Struct(Symbol, Vec<NodeId>),
    /// `α-list` (the set of *proper* lists with elements of type α).
    List(NodeId),
}

/// A canonical abstract description of an argument tuple.
///
/// # Examples
///
/// ```
/// use absdom::Pattern;
/// let p = Pattern::from_spec(&["atom", "glist"]).unwrap();
/// let q = Pattern::from_spec(&["atom", "list(g)"]).unwrap();
/// assert_eq!(p, q);
/// ```
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pattern {
    nodes: Vec<PNode>,
    roots: Vec<NodeId>,
}

impl Pattern {
    /// Build a pattern from raw parts and canonicalize it.
    pub fn new(nodes: Vec<PNode>, roots: Vec<NodeId>) -> Pattern {
        Pattern { nodes, roots }.canonicalize()
    }

    /// Build a pattern from parts that are **already canonical**
    /// (pre-order numbering from the roots, ground subgraphs unshared).
    /// The extractor in `awam-core` produces this form directly; in debug
    /// builds the invariant is checked.
    pub fn from_canonical(nodes: Vec<PNode>, roots: Vec<NodeId>) -> Pattern {
        let p = Pattern { nodes, roots };
        debug_assert_eq!(
            p,
            p.canonicalize(),
            "from_canonical got a non-canonical graph"
        );
        p
    }

    /// Decompose into raw `(nodes, roots)` parts — the inverse of
    /// [`Pattern::from_canonical`], so builders can recycle the buffers.
    pub fn into_parts(self) -> (Vec<PNode>, Vec<NodeId>) {
        (self.nodes, self.roots)
    }

    /// The empty (zero-argument) pattern.
    pub fn empty() -> Pattern {
        Pattern {
            nodes: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Number of argument roots.
    pub fn arity(&self) -> usize {
        self.roots.len()
    }

    /// The root node of argument `i`.
    pub fn root(&self, i: usize) -> NodeId {
        self.roots[i]
    }

    /// The node table.
    pub fn nodes(&self) -> &[PNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &PNode {
        &self.nodes[id]
    }

    /// Whether every argument is ground.
    pub fn is_ground(&self) -> bool {
        self.roots.iter().all(|&r| self.node_is_ground(r))
    }

    /// Whether the subgraph rooted at `id` denotes only ground terms.
    pub fn node_is_ground(&self, id: NodeId) -> bool {
        match &self.nodes[id] {
            PNode::Leaf(l) => l.is_ground(),
            PNode::Int(_) | PNode::Atom(_) => true,
            PNode::Struct(_, args) => args.iter().all(|&a| self.node_is_ground(a)),
            PNode::List(e) => self.node_is_ground(*e),
        }
    }

    /// The primary approximation (§4.2's `AbsType`) of the subgraph at
    /// `id`, ignoring sub-structure.
    pub fn leaf_approx(&self, id: NodeId) -> AbsLeaf {
        match &self.nodes[id] {
            PNode::Leaf(l) => *l,
            PNode::Int(_) => AbsLeaf::Integer,
            PNode::Atom(_) => AbsLeaf::Atom,
            PNode::Struct(..) | PNode::List(_) => {
                if self.node_is_ground(id) {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::NonVar
                }
            }
        }
    }

    // ----- canonicalization -----

    /// Renumber nodes in first-visit DFS order from the roots; ground
    /// subgraphs are duplicated per occurrence (sharing of ground terms
    /// carries no dataflow information, and unsharing them is a sound
    /// over-approximation that improves extension-table reuse).
    fn canonicalize(&self) -> Pattern {
        self.canonicalize_with(&mut Vec::new())
    }

    /// [`Pattern::canonicalize`] with a caller-provided renumbering map
    /// (cleared and resized here), so hot callers reuse one allocation.
    fn canonicalize_with(&self, map: &mut Vec<Option<NodeId>>) -> Pattern {
        let mut out = Pattern::empty();
        self.canonicalize_into(map, &mut out, &mut Vec::new());
        out
    }

    /// [`Pattern::canonicalize_with`] writing into an existing pattern
    /// (cleared first, its struct argument vectors harvested into
    /// `args_pool` and reissued), so the output buffers are reusable too.
    fn canonicalize_into(
        &self,
        map: &mut Vec<Option<NodeId>>,
        out: &mut Pattern,
        args_pool: &mut Vec<Vec<NodeId>>,
    ) {
        for node in out.nodes.drain(..) {
            if args_pool.len() == ARGS_POOL_CAP {
                break;
            }
            if let PNode::Struct(_, mut args) = node {
                args.clear();
                args_pool.push(args);
            }
        }
        out.nodes.clear();
        out.roots.clear();
        map.clear();
        map.resize(self.nodes.len(), None);
        for i in 0..self.roots.len() {
            let new = self.canon_node(self.roots[i], map, out, args_pool);
            out.roots.push(new);
        }
    }

    fn canon_node(
        &self,
        id: NodeId,
        map: &mut Vec<Option<NodeId>>,
        out: &mut Pattern,
        args_pool: &mut Vec<Vec<NodeId>>,
    ) -> NodeId {
        let shareable = !self.node_is_ground(id);
        if shareable {
            if let Some(new) = map[id] {
                return new;
            }
        }
        // Reserve the slot first so children come after their parent
        // (pre-order numbering) and cycles cannot recurse forever.
        let new = out.nodes.len();
        out.nodes.push(PNode::Leaf(AbsLeaf::Any)); // placeholder
        if shareable {
            map[id] = Some(new);
        }
        let node = match &self.nodes[id] {
            PNode::Leaf(l) => PNode::Leaf(*l),
            PNode::Int(i) => PNode::Int(*i),
            PNode::Atom(a) => PNode::Atom(*a),
            PNode::Struct(f, args) => {
                let mut new_args = args_pool.pop().unwrap_or_default();
                for &a in args {
                    let child = self.canon_node(a, map, out, args_pool);
                    new_args.push(child);
                }
                PNode::Struct(*f, new_args)
            }
            PNode::List(e) => PNode::List(self.canon_node(*e, map, out, args_pool)),
        };
        out.nodes[new] = node;
        new
    }

    // ----- lub -----

    /// Least upper bound of two patterns of the same arity.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ (an internal invariant: the extension
    /// table lubs success patterns of a single predicate).
    pub fn lub(&self, other: &Pattern) -> Pattern {
        self.lub_with(other, &mut LubScratch::default())
    }

    /// [`Pattern::lub`] with caller-provided scratch buffers. The lattice
    /// memo layer computes thousands of structural lubs per analysis;
    /// reusing the context buffers (group memo, occurrence counts,
    /// pre-canonical output, canonicalization map) keeps the hot path off
    /// the allocator.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ, like [`Pattern::lub`].
    pub fn lub_with(&self, other: &Pattern, scratch: &mut LubScratch) -> Pattern {
        self.lub_core(other, scratch);
        scratch.out.canonicalize_with(&mut scratch.canon_map)
    }

    /// [`Pattern::lub_with`], but the canonical result is left inside the
    /// scratch (and returned by reference) instead of freshly allocated.
    /// Pair with [`crate::intern::SessionInterner::intern_ref`] for a
    /// fully allocation-free lub on arena hits.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ, like [`Pattern::lub`].
    pub fn lub_in<'s>(&self, other: &Pattern, scratch: &'s mut LubScratch) -> &'s Pattern {
        self.lub_core(other, scratch);
        scratch.out.canonicalize_into(
            &mut scratch.canon_map,
            &mut scratch.canon_out,
            &mut scratch.args_pool,
        );
        &scratch.canon_out
    }

    /// Shared body of [`Pattern::lub_with`] / [`Pattern::lub_in`]: builds
    /// the pre-canonical join into `scratch.out`.
    fn lub_core(&self, other: &Pattern, scratch: &mut LubScratch) {
        assert_eq!(self.arity(), other.arity(), "lub of mismatched arities");
        scratch.reset(self.nodes.len(), other.nodes.len());
        let mut ctx = LubCtx {
            sides: [self, other],
            s: scratch,
        };
        for i in 0..self.arity() {
            let mut group = ctx.s.take_group();
            group.push((0, self.roots[i]));
            group.push((1, other.roots[i]));
            let root = ctx.lub_group(group);
            ctx.s.out.roots.push(root);
        }
        // Aliasing-drop weakening: a source node that participated in more
        // than one distinct group lost (some of) its sharing; `var` leaves
        // built from such nodes must weaken to `any`.
        // (`memo[i]` is the group result node `i` was built from: results
        // are numbered in memo insertion order.)
        for result in 0..ctx.s.memo.len() {
            if matches!(ctx.s.out.nodes[result], PNode::Leaf(AbsLeaf::Var))
                && ctx.s.memo[result]
                    .0
                    .iter()
                    .any(|&(side, n)| ctx.s.occurrences[side][n] > 1)
            {
                ctx.s.out.nodes[result] = PNode::Leaf(AbsLeaf::Any);
            }
        }
    }

    /// Whether `self` is subsumed by `other` (`self ⊑ other`): every
    /// concrete argument tuple described by `self` is also described by
    /// `other`. Computed through the canonical lub — patterns are kept
    /// canonical, so `self ⊑ other` holds exactly when joining `self`
    /// into `other` adds nothing.
    ///
    /// This is the reuse test of the session layer: a query whose entry
    /// pattern is subsumed by an already-analyzed calling pattern can be
    /// answered from the extension table without running the fixpoint.
    pub fn leq(&self, other: &Pattern) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        self == other || self.lub(other) == *other
    }

    // ----- coverage (the soundness oracle) -----

    /// Whether the concrete argument tuple `args` is described by this
    /// pattern. Shared (aliased) nodes require structurally identical
    /// terms; `var` requires the term to be a variable; `list(α)` requires
    /// a proper list.
    ///
    /// This is the γ-membership check used by the end-to-end soundness
    /// tests: every concrete call observed when running a benchmark must
    /// be covered by the analyzer's extension-table entry.
    pub fn covers(&self, args: &[Term]) -> bool {
        if args.len() != self.arity() {
            return false;
        }
        let mut seen: HashMap<NodeId, Term> = HashMap::new();
        self.roots
            .iter()
            .zip(args)
            .all(|(&r, t)| self.covers_node(r, t, &mut seen))
    }

    fn covers_node(&self, id: NodeId, term: &Term, seen: &mut HashMap<NodeId, Term>) -> bool {
        // Definite sharing: the same node must describe identical terms.
        if self.shared_count(id) > 1 {
            if let Some(prev) = seen.get(&id) {
                if prev != term {
                    return false;
                }
            } else {
                seen.insert(id, term.clone());
            }
        }
        match &self.nodes[id] {
            PNode::Leaf(l) => leaf_covers(*l, term),
            PNode::Int(i) => matches!(term, Term::Int(j) if j == i),
            PNode::Atom(a) => matches!(term, Term::Atom(b) if b == a),
            PNode::Struct(f, nodes) => match term {
                Term::Struct(g, args) if g == f && args.len() == nodes.len() => nodes
                    .iter()
                    .zip(args)
                    .all(|(&n, a)| self.covers_node(n, a, seen)),
                _ => false,
            },
            PNode::List(e) => self.covers_list(*e, term, seen),
        }
    }

    fn covers_list(&self, elem: NodeId, term: &Term, seen: &mut HashMap<NodeId, Term>) -> bool {
        let mut t = term;
        loop {
            match t {
                Term::Atom(_) => {
                    // Must be `[]`; we cannot resolve the symbol here, so
                    // accept any arity-0 atom named like nil by checking
                    // the well-known index.
                    return is_nil_atom(t);
                }
                Term::Struct(f, args) if args.len() == 2 && is_dot_symbol(*f) => {
                    if !self.covers_node(elem, &args[0], seen) {
                        return false;
                    }
                    t = &args[1];
                }
                _ => return false,
            }
        }
    }

    fn shared_count(&self, id: NodeId) -> usize {
        let mut count = self.roots.iter().filter(|&&r| r == id).count();
        // Count in-edges plus root references.
        for node in &self.nodes {
            match node {
                PNode::Struct(_, args) => count += args.iter().filter(|&&a| a == id).count(),
                PNode::List(e) => count += usize::from(*e == id),
                _ => {}
            }
        }
        count
    }

    // ----- parsing and display -----

    /// Parse a pattern from one spec string per argument.
    ///
    /// Specs: `any`, `nv`, `g`/`ground`, `const`, `atom`, `int`/`integer`,
    /// `var`, `glist` (= `list(g)`), `ilist` (= `list(int)`),
    /// `list(<spec>)`, `<integer literal>`.
    ///
    /// Returns `None` on an unrecognized spec.
    pub fn from_spec(specs: &[&str]) -> Option<Pattern> {
        let mut nodes = Vec::new();
        let mut roots = Vec::new();
        for spec in specs {
            let id = parse_spec(spec.trim(), &mut nodes)?;
            roots.push(id);
        }
        Some(Pattern::new(nodes, roots))
    }

    /// Render with `interner` for atom names; shared nodes print as
    /// `#n=…` on first occurrence and `#n` after.
    pub fn display(&self, interner: &Interner) -> String {
        let mut printed: HashMap<NodeId, usize> = HashMap::new();
        let mut next_mark = 0;
        let args: Vec<String> = self
            .roots
            .clone()
            .into_iter()
            .map(|r| self.display_node(r, interner, &mut printed, &mut next_mark))
            .collect();
        format!("({})", args.join(", "))
    }

    fn display_node(
        &self,
        id: NodeId,
        interner: &Interner,
        printed: &mut HashMap<NodeId, usize>,
        next_mark: &mut usize,
    ) -> String {
        let shared = self.shared_count(id) > 1;
        if shared {
            if let Some(mark) = printed.get(&id) {
                return format!("#{mark}");
            }
            let mark = *next_mark;
            *next_mark += 1;
            printed.insert(id, mark);
            let body = self.display_body(id, interner, printed, next_mark);
            return format!("#{mark}={body}");
        }
        self.display_body(id, interner, printed, next_mark)
    }

    fn display_body(
        &self,
        id: NodeId,
        interner: &Interner,
        printed: &mut HashMap<NodeId, usize>,
        next_mark: &mut usize,
    ) -> String {
        match &self.nodes[id] {
            PNode::Leaf(l) => l.to_string(),
            PNode::Int(i) => i.to_string(),
            PNode::Atom(a) => interner.resolve(*a).to_owned(),
            PNode::Struct(f, args) => {
                let name = interner.resolve(*f);
                let args: Vec<String> = args
                    .iter()
                    .map(|&a| self.display_node(a, interner, printed, next_mark))
                    .collect();
                if name == "." && args.len() == 2 {
                    format!("[{}|{}]", args[0], args[1])
                } else {
                    format!("{name}({})", args.join(", "))
                }
            }
            PNode::List(e) => {
                let e = self.display_node(*e, interner, printed, next_mark);
                if e == "g" {
                    "glist".to_owned()
                } else {
                    format!("list({e})")
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Displays without an interner resolve atoms as `atom#N`.
        let mut printed = HashMap::new();
        let mut next_mark = 0;
        let interner = Interner::new();
        let args: Vec<String> = self
            .roots
            .clone()
            .into_iter()
            .map(|r| {
                if self.symbols_in_range(r, interner.len()) {
                    self.display_node(r, &interner, &mut printed, &mut next_mark)
                } else {
                    format!("<node {r}>")
                }
            })
            .collect();
        write!(f, "({})", args.join(", "))
    }
}

impl Pattern {
    fn symbols_in_range(&self, id: NodeId, len: usize) -> bool {
        match &self.nodes[id] {
            PNode::Atom(a) => a.index() < len,
            PNode::Struct(f, args) => {
                f.index() < len && args.iter().all(|&a| self.symbols_in_range(a, len))
            }
            PNode::List(e) => self.symbols_in_range(*e, len),
            _ => true,
        }
    }
}

/// Reusable buffers for [`Pattern::lub_with`]: everything a lub computes
/// through except the returned canonical pattern itself. Freed group
/// vectors are pooled and handed back out, so a warm scratch performs no
/// allocation at all on patterns it has seen the shape of before.
#[derive(Clone, Debug, Default)]
pub struct LubScratch {
    /// Group → result node; groups are tiny, linear search wins. Entry
    /// `i` is the group result node `i` was built from (results are
    /// numbered in insertion order).
    memo: Vec<(Vec<(usize, NodeId)>, NodeId)>,
    /// How many distinct groups each source node participates in
    /// (dense per side).
    occurrences: [Vec<u8>; 2],
    /// The pre-canonical output under construction.
    out: Pattern,
    /// Retired group vectors, reissued by [`LubScratch::take_group`].
    pool: Vec<Vec<(usize, NodeId)>>,
    /// Canonicalization renumbering map.
    canon_map: Vec<Option<NodeId>>,
    /// The canonical result of the last [`Pattern::lub_in`].
    canon_out: Pattern,
    /// Retired struct-argument vectors, reissued to new struct nodes in
    /// both the join and canonicalization passes.
    args_pool: Vec<Vec<NodeId>>,
    /// Group-hash → first memo index with that hash, so a group lookup
    /// probes once instead of scanning the whole memo (which is quadratic
    /// on large patterns). Cleared (capacity kept) per join.
    group_index: crate::intern::FxHashMap<u64, u32>,
    /// Memo indices whose group hash collided with an earlier entry;
    /// scanned linearly (in practice always empty).
    group_overflow: Vec<(u64, u32)>,
}

/// Upper bound on pooled struct-argument vectors (a backstop so one huge
/// pattern cannot pin memory; typical patterns stay far below).
const ARGS_POOL_CAP: usize = 4096;

impl LubScratch {
    /// Prepare for a lub of two patterns with the given node counts.
    fn reset(&mut self, left_nodes: usize, right_nodes: usize) {
        for (group, _) in self.memo.drain(..) {
            self.pool.push(group);
        }
        for (side, len) in [left_nodes, right_nodes].into_iter().enumerate() {
            self.occurrences[side].clear();
            self.occurrences[side].resize(len, 0);
        }
        for node in self.out.nodes.drain(..) {
            if self.args_pool.len() == ARGS_POOL_CAP {
                break;
            }
            if let PNode::Struct(_, mut args) = node {
                args.clear();
                self.args_pool.push(args);
            }
        }
        self.out.nodes.clear();
        self.out.roots.clear();
        self.group_index.clear();
        self.group_overflow.clear();
    }

    /// The memo entry for `group`, probed through the hash index.
    fn find_group(&self, hash: u64, group: &[(usize, NodeId)]) -> Option<NodeId> {
        if let Some(&i) = self.group_index.get(&hash) {
            if self.memo[i as usize].0 == group {
                return Some(self.memo[i as usize].1);
            }
            // First-slot mismatch: same hash, different group — check the
            // collision overflow.
            for &(h, j) in &self.group_overflow {
                if h == hash && self.memo[j as usize].0 == group {
                    return Some(self.memo[j as usize].1);
                }
            }
        }
        None
    }

    /// Record that memo entry `memo_idx` holds the group hashing to `hash`.
    fn index_group(&mut self, hash: u64, memo_idx: usize) {
        let memo_idx = u32::try_from(memo_idx).expect("lub memo overflow");
        match self.group_index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(memo_idx);
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                self.group_overflow.push((hash, memo_idx));
            }
        }
    }

    /// An empty struct-argument vector, recycled when available.
    fn take_args(&mut self) -> Vec<NodeId> {
        self.args_pool.pop().unwrap_or_default()
    }

    /// Hash of a (sorted, deduped) group, for the memo bucket index.
    fn group_hash(group: &[(usize, NodeId)]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::intern::FxHasher::default();
        group.hash(&mut h);
        h.finish()
    }

    /// An empty group vector, reusing a retired one when available.
    fn take_group(&mut self) -> Vec<(usize, NodeId)> {
        self.pool
            .pop()
            .map(|mut g| {
                g.clear();
                g
            })
            .unwrap_or_default()
    }

    /// Return a group vector to the pool without memoizing it.
    fn recycle(&mut self, group: Vec<(usize, NodeId)>) {
        self.pool.push(group);
    }
}

struct LubCtx<'a> {
    sides: [&'a Pattern; 2],
    s: &'a mut LubScratch,
}

impl LubCtx<'_> {
    /// Lub of a group of source nodes (normally one per side; list
    /// summarization can merge several from one side). Takes ownership of
    /// `group` (pool-allocated via [`LubScratch::take_group`]) and either
    /// memoizes or recycles it.
    fn lub_group(&mut self, mut group: Vec<(usize, NodeId)>) -> NodeId {
        group.sort_unstable();
        group.dedup();
        let hash = LubScratch::group_hash(&group);
        if let Some(id) = self.s.find_group(hash, &group) {
            self.s.recycle(group);
            return id;
        }
        // Reserve result slot (guards against cycles, preserves sharing).
        let result = self.s.out.nodes.len();
        self.s.out.nodes.push(PNode::Leaf(AbsLeaf::Any));
        for &(side, n) in &group {
            self.s.occurrences[side][n] = self.s.occurrences[side][n].saturating_add(1);
        }
        self.s.index_group(hash, self.s.memo.len());
        self.s.memo.push((group, result));

        let node = self.compute(result);
        self.s.out.nodes[result] = node;
        result
    }

    /// Compute the node for memo entry `result` (its group is read from
    /// the memo, which recursion only appends to).
    fn compute(&mut self, result: usize) -> PNode {
        let group_len = self.s.memo[result].0.len();
        let view = |ctx: &Self, i: usize| {
            let (side, n) = ctx.s.memo[result].0[i];
            ctx.sides[side].node(n)
        };

        // All identical integers / atoms.
        if let PNode::Int(i) = view(self, 0) {
            let i = *i;
            if (0..group_len).all(|k| matches!(view(self, k), PNode::Int(j) if *j == i)) {
                return PNode::Int(i);
            }
        }
        if let PNode::Atom(a) = view(self, 0) {
            let a = *a;
            if (0..group_len).all(|k| matches!(view(self, k), PNode::Atom(b) if *b == a)) {
                return PNode::Atom(a);
            }
        }
        // All structs with the same functor (including cons/cons).
        if let PNode::Struct(f, args0) = view(self, 0) {
            let (f, arity) = (*f, args0.len());
            if (0..group_len).all(
                |k| matches!(view(self, k), PNode::Struct(g, a) if *g == f && a.len() == arity),
            ) {
                let mut children = self.s.take_args();
                for i in 0..arity {
                    let mut child_group = self.s.take_group();
                    for k in 0..group_len {
                        let (side, n) = self.s.memo[result].0[k];
                        let PNode::Struct(_, args) = self.sides[side].node(n) else {
                            unreachable!()
                        };
                        child_group.push((side, args[i]));
                    }
                    children.push(self.lub_group(child_group));
                }
                return PNode::Struct(f, children);
            }
        }
        // All list-shaped (List / nil / cons chains) → α-list.
        if let Some(elem_groups) = self.try_list_view(result) {
            if elem_groups.is_empty() {
                // All nil.
                self.s.recycle(elem_groups);
                return PNode::Atom(nil_symbol());
            }
            let elem = self.lub_group(elem_groups);
            return PNode::List(elem);
        }
        // Fallback: leaf lub of primary approximations.
        let (s0, n0) = self.s.memo[result].0[0];
        let mut leaf = self.sides[s0].leaf_approx(n0);
        for k in 1..group_len {
            let (side, n) = self.s.memo[result].0[k];
            leaf = leaf.lub(self.sides[side].leaf_approx(n));
        }
        PNode::Leaf(leaf)
    }

    /// If every member of the group of memo entry `result` is
    /// list-shaped, return the union of their element nodes (to be lubbed
    /// into the α parameter). `None` if any member is not a
    /// (proper-)list shape.
    fn try_list_view(&mut self, result: usize) -> Option<Vec<(usize, NodeId)>> {
        let mut elems = self.s.take_group();
        for k in 0..self.s.memo[result].0.len() {
            let (side, n) = self.s.memo[result].0[k];
            if self.collect_list_elems(side, n, &mut elems, 0).is_none() {
                self.s.recycle(elems);
                return None;
            }
        }
        Some(elems)
    }

    fn collect_list_elems(
        &self,
        side: usize,
        node: NodeId,
        elems: &mut Vec<(usize, NodeId)>,
        depth: usize,
    ) -> Option<()> {
        if depth > 64 {
            return None;
        }
        match self.sides[side].node(node) {
            PNode::List(e) => {
                elems.push((side, *e));
                Some(())
            }
            PNode::Atom(a) if *a == nil_symbol() => Some(()),
            PNode::Struct(f, args) if is_dot_symbol(*f) && args.len() == 2 => {
                elems.push((side, args[0]));
                self.collect_list_elems(side, args[1], elems, depth + 1)
            }
            _ => None,
        }
    }
}

fn leaf_covers(leaf: AbsLeaf, term: &Term) -> bool {
    use AbsLeaf::*;
    match leaf {
        Any => true,
        Var => matches!(term, Term::Var(_)),
        NonVar => !matches!(term, Term::Var(_)),
        Ground => term.is_ground(),
        Const => matches!(term, Term::Atom(_) | Term::Int(_)),
        Atom => matches!(term, Term::Atom(_)),
        Integer => matches!(term, Term::Int(_)),
    }
}

/// The well-known `[]` and `'.'` symbols (fixed indices in every
/// [`Interner`]).
fn well_known() -> (Symbol, Symbol) {
    static CELL: std::sync::OnceLock<(usize, usize)> = std::sync::OnceLock::new();
    let &(nil, dot) = CELL.get_or_init(|| {
        let i = Interner::new();
        (i.nil().index(), i.dot().index())
    });
    (Symbol::from_index(nil), Symbol::from_index(dot))
}

/// The well-known `[]` symbol (fixed index in every [`Interner`]).
pub fn nil_symbol() -> Symbol {
    well_known().0
}

/// The well-known `'.'` symbol (fixed index in every [`Interner`]).
pub fn dot_symbol() -> Symbol {
    well_known().1
}

/// Whether `sym` is the well-known `'.'` symbol.
pub fn is_dot_symbol(sym: Symbol) -> bool {
    sym == well_known().1
}

fn is_nil_atom(term: &Term) -> bool {
    matches!(term, Term::Atom(a) if *a == nil_symbol())
}

fn parse_spec(spec: &str, nodes: &mut Vec<PNode>) -> Option<NodeId> {
    let push = |nodes: &mut Vec<PNode>, n: PNode| {
        nodes.push(n);
        nodes.len() - 1
    };
    if let Ok(i) = spec.parse::<i64>() {
        return Some(push(nodes, PNode::Int(i)));
    }
    let leaf = match spec {
        "any" => Some(AbsLeaf::Any),
        "nv" | "nonvar" => Some(AbsLeaf::NonVar),
        "g" | "ground" => Some(AbsLeaf::Ground),
        "const" => Some(AbsLeaf::Const),
        "atom" => Some(AbsLeaf::Atom),
        "int" | "integer" => Some(AbsLeaf::Integer),
        "var" => Some(AbsLeaf::Var),
        _ => None,
    };
    if let Some(l) = leaf {
        return Some(push(nodes, PNode::Leaf(l)));
    }
    match spec {
        "glist" => {
            let e = push(nodes, PNode::Leaf(AbsLeaf::Ground));
            Some(push(nodes, PNode::List(e)))
        }
        "ilist" => {
            let e = push(nodes, PNode::Leaf(AbsLeaf::Integer));
            Some(push(nodes, PNode::List(e)))
        }
        "nil" | "[]" => Some(push(nodes, PNode::Atom(nil_symbol()))),
        _ => {
            let inner = spec.strip_prefix("list(")?.strip_suffix(')')?;
            let e = parse_spec(inner, nodes)?;
            Some(push(nodes, PNode::List(e)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_term;

    fn spec(s: &[&str]) -> Pattern {
        Pattern::from_spec(s).expect("valid spec")
    }

    fn term(src: &str) -> Term {
        parse_term(src).unwrap().0
    }

    #[test]
    fn spec_parsing_and_equality() {
        assert_eq!(spec(&["glist"]), spec(&["list(g)"]));
        assert_ne!(spec(&["glist"]), spec(&["list(any)"]));
        assert_eq!(spec(&["any", "var"]).arity(), 2);
        assert!(Pattern::from_spec(&["bogus"]).is_none());
        assert_eq!(spec(&["list(list(int))"]).arity(), 1);
    }

    #[test]
    fn canonical_equality_is_structural() {
        // Build the same shape with scrambled node order.
        let a = Pattern::new(vec![PNode::Leaf(AbsLeaf::Ground), PNode::List(0)], vec![1]);
        let b = Pattern::new(
            vec![
                PNode::List(2),
                PNode::Leaf(AbsLeaf::Atom),
                PNode::Leaf(AbsLeaf::Ground),
            ],
            vec![0],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn sharing_is_part_of_identity() {
        // (var, var) unshared vs (X, X) shared.
        let unshared = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Leaf(AbsLeaf::Var)],
            vec![0, 1],
        );
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        assert_ne!(unshared, shared);
    }

    #[test]
    fn lub_of_equal_is_identity() {
        for s in [
            vec!["any"],
            vec!["glist", "var"],
            vec!["atom", "int", "list(any)"],
        ] {
            let p = spec(&s);
            assert_eq!(p.lub(&p), p, "{s:?}");
        }
    }

    #[test]
    fn lub_leaf_examples() {
        assert_eq!(spec(&["atom"]).lub(&spec(&["int"])), spec(&["const"]));
        assert_eq!(spec(&["var"]).lub(&spec(&["g"])), spec(&["any"]));
        assert_eq!(spec(&["g"]).lub(&spec(&["nv"])), spec(&["nv"]));
    }

    #[test]
    fn lub_lists() {
        assert_eq!(spec(&["glist"]).lub(&spec(&["glist"])), spec(&["glist"]));
        assert_eq!(
            spec(&["glist"]).lub(&spec(&["list(any)"])),
            spec(&["list(any)"])
        );
        assert_eq!(spec(&["glist"]).lub(&spec(&["nil"])), spec(&["glist"]));
        // list vs non-list struct falls back to a leaf.
        let mut nodes = Vec::new();
        let a = nodes.len();
        nodes.push(PNode::Leaf(AbsLeaf::Ground));
        let f = prolog_syntax::Interner::new().intern("f");
        let s = PNode::Struct(f, vec![a]);
        nodes.push(s);
        let strct = Pattern::new(nodes, vec![1]);
        assert_eq!(spec(&["glist"]).lub(&strct), spec(&["g"]));
    }

    #[test]
    fn lub_cons_with_list_summarizes() {
        // [g|glist] ⊔ glist = glist
        let mut nodes = Vec::new();
        nodes.push(PNode::Leaf(AbsLeaf::Ground)); // 0: g (car)
        nodes.push(PNode::Leaf(AbsLeaf::Ground)); // 1: g (list elem)
        nodes.push(PNode::List(1)); // 2: glist (cdr)
        let dot = prolog_syntax::Interner::new().dot();
        nodes.push(PNode::Struct(dot, vec![0, 2])); // 3: [g|glist]
        let cons = Pattern::new(nodes, vec![3]);
        assert_eq!(cons.lub(&spec(&["glist"])), spec(&["glist"]));
    }

    #[test]
    fn lub_keeps_sharing_present_on_both_sides() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        let joined = shared.lub(&shared);
        assert_eq!(joined, shared);
    }

    #[test]
    fn lub_drops_one_sided_sharing_and_weakens_var() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        let unshared = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Leaf(AbsLeaf::Var)],
            vec![0, 1],
        );
        let joined = shared.lub(&unshared);
        // Sharing dropped, and var weakened to any (the dropped alias may
        // bind through the other occurrence).
        assert_eq!(joined, spec(&["any", "any"]));
    }

    #[test]
    fn lub_is_commutative_and_monotone_on_samples() {
        let samples = [
            spec(&["any", "var"]),
            spec(&["glist", "g"]),
            spec(&["atom", "int"]),
            spec(&["nv", "list(any)"]),
            Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]),
        ];
        for p in &samples {
            for q in &samples {
                assert_eq!(p.lub(q), q.lub(p));
                let j = p.lub(q);
                // lub is an upper bound in the coverage sense: anything
                // covered by p is covered by j (spot-check with terms).
                for t in ["f(a)", "[1, 2]", "7", "foo"] {
                    let t1 = term(t);
                    let t2 = term(t);
                    if p.covers(&[t1.clone(), t2.clone()]) {
                        assert!(j.covers(&[t1, t2]), "{p} ⊑ {j} violated on {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn covers_leaves() {
        assert!(spec(&["any"]).covers(&[term("f(X)")]));
        assert!(spec(&["g"]).covers(&[term("f(a, [1])")]));
        assert!(!spec(&["g"]).covers(&[term("f(X)")]));
        assert!(spec(&["var"]).covers(&[term("X")]));
        assert!(!spec(&["var"]).covers(&[term("a")]));
        assert!(spec(&["atom"]).covers(&[term("foo")]));
        assert!(!spec(&["atom"]).covers(&[term("3")]));
        assert!(spec(&["const"]).covers(&[term("3")]));
        assert!(spec(&["nv"]).covers(&[term("f(X)")]));
    }

    #[test]
    fn covers_lists() {
        assert!(spec(&["glist"]).covers(&[term("[1, 2, 3]")]));
        assert!(spec(&["glist"]).covers(&[term("[]")]));
        assert!(!spec(&["glist"]).covers(&[term("[1|X]")]));
        assert!(!spec(&["glist"]).covers(&[term("[X]")]));
        assert!(spec(&["list(any)"]).covers(&[term("[X, 1]")]));
        assert!(spec(&["ilist"]).covers(&[term("[1, 2]")]));
        assert!(!spec(&["ilist"]).covers(&[term("[a]")]));
    }

    #[test]
    fn covers_respects_sharing() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Any)], vec![0, 0]);
        // Parse both argument terms together so they share one interner.
        let Term::Struct(_, args) = term("pair(f(a), f(a), g(b))") else {
            panic!()
        };
        assert!(shared.covers(&[args[0].clone(), args[1].clone()]));
        assert!(!shared.covers(&[args[0].clone(), args[2].clone()]));
    }

    #[test]
    fn display_formats() {
        let interner = Interner::new();
        assert_eq!(spec(&["glist", "var"]).display(&interner), "(glist, var)");
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        assert_eq!(shared.display(&interner), "(#0=var, #0)");
    }

    #[test]
    fn ground_subgraphs_are_unshared_by_canonicalization() {
        // Two roots sharing one ground list node → duplicated.
        let nodes = vec![PNode::Leaf(AbsLeaf::Ground), PNode::List(0)];
        let p = Pattern::new(nodes, vec![1, 1]);
        assert_eq!(p, spec(&["glist", "glist"]));
    }
}
