//! Calling/success patterns: abstract term graphs with aliasing.
//!
//! A [`Pattern`] describes a tuple of abstract terms (the arguments of a
//! call, or of a successful return). It is a small arena of [`PNode`]s
//! plus one root per argument; *shared* node ids encode **definite
//! aliasing** ("these positions hold the very same term"), which is the
//! machine-level form of the paper's "complete aliasing information".
//!
//! Patterns are kept **canonical** (nodes renumbered in first-visit DFS
//! order, ground subgraphs unshared) so that structural equality is
//! pattern equality — the extension table keys on this.
//!
//! # The lub and aliasing
//!
//! [`Pattern::lub`] is an n-way product construction: the result node for
//! a *group* of source nodes is shared exactly when the same group recurs,
//! so definite sharing survives the join only where it is present on both
//! sides. When one side's sharing is dropped, a `var` leaf may no longer
//! claim definite freeness (its alias might have been bound through the
//! other occurrence), so such leaves are weakened to `any` — `var` is the
//! only type not closed under instantiation. See DESIGN.md §3.4.

use crate::leaf::AbsLeaf;
use prolog_syntax::{Interner, Symbol, Term};
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its [`Pattern`].
pub type NodeId = usize;

/// One node of a pattern graph.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PNode {
    /// An instantiable simple abstract type.
    Leaf(AbsLeaf),
    /// A specific integer.
    Int(i64),
    /// A specific atom.
    Atom(Symbol),
    /// `struct(f/n, α₁…αₙ)`.
    Struct(Symbol, Vec<NodeId>),
    /// `α-list` (the set of *proper* lists with elements of type α).
    List(NodeId),
}

/// A canonical abstract description of an argument tuple.
///
/// # Examples
///
/// ```
/// use absdom::Pattern;
/// let p = Pattern::from_spec(&["atom", "glist"]).unwrap();
/// let q = Pattern::from_spec(&["atom", "list(g)"]).unwrap();
/// assert_eq!(p, q);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pattern {
    nodes: Vec<PNode>,
    roots: Vec<NodeId>,
}

impl Pattern {
    /// Build a pattern from raw parts and canonicalize it.
    pub fn new(nodes: Vec<PNode>, roots: Vec<NodeId>) -> Pattern {
        Pattern { nodes, roots }.canonicalize()
    }

    /// Build a pattern from parts that are **already canonical**
    /// (pre-order numbering from the roots, ground subgraphs unshared).
    /// The extractor in `awam-core` produces this form directly; in debug
    /// builds the invariant is checked.
    pub fn from_canonical(nodes: Vec<PNode>, roots: Vec<NodeId>) -> Pattern {
        let p = Pattern { nodes, roots };
        debug_assert_eq!(
            p,
            p.canonicalize(),
            "from_canonical got a non-canonical graph"
        );
        p
    }

    /// The empty (zero-argument) pattern.
    pub fn empty() -> Pattern {
        Pattern {
            nodes: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Number of argument roots.
    pub fn arity(&self) -> usize {
        self.roots.len()
    }

    /// The root node of argument `i`.
    pub fn root(&self, i: usize) -> NodeId {
        self.roots[i]
    }

    /// The node table.
    pub fn nodes(&self) -> &[PNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &PNode {
        &self.nodes[id]
    }

    /// Whether every argument is ground.
    pub fn is_ground(&self) -> bool {
        self.roots.iter().all(|&r| self.node_is_ground(r))
    }

    /// Whether the subgraph rooted at `id` denotes only ground terms.
    pub fn node_is_ground(&self, id: NodeId) -> bool {
        match &self.nodes[id] {
            PNode::Leaf(l) => l.is_ground(),
            PNode::Int(_) | PNode::Atom(_) => true,
            PNode::Struct(_, args) => args.iter().all(|&a| self.node_is_ground(a)),
            PNode::List(e) => self.node_is_ground(*e),
        }
    }

    /// The primary approximation (§4.2's `AbsType`) of the subgraph at
    /// `id`, ignoring sub-structure.
    pub fn leaf_approx(&self, id: NodeId) -> AbsLeaf {
        match &self.nodes[id] {
            PNode::Leaf(l) => *l,
            PNode::Int(_) => AbsLeaf::Integer,
            PNode::Atom(_) => AbsLeaf::Atom,
            PNode::Struct(..) | PNode::List(_) => {
                if self.node_is_ground(id) {
                    AbsLeaf::Ground
                } else {
                    AbsLeaf::NonVar
                }
            }
        }
    }

    // ----- canonicalization -----

    /// Renumber nodes in first-visit DFS order from the roots; ground
    /// subgraphs are duplicated per occurrence (sharing of ground terms
    /// carries no dataflow information, and unsharing them is a sound
    /// over-approximation that improves extension-table reuse).
    fn canonicalize(&self) -> Pattern {
        let mut out = Pattern {
            nodes: Vec::new(),
            roots: Vec::new(),
        };
        let mut map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let roots = self.roots.clone();
        for r in roots {
            let new = self.canon_node(r, &mut map, &mut out);
            out.roots.push(new);
        }
        out
    }

    fn canon_node(&self, id: NodeId, map: &mut Vec<Option<NodeId>>, out: &mut Pattern) -> NodeId {
        let shareable = !self.node_is_ground(id);
        if shareable {
            if let Some(new) = map[id] {
                return new;
            }
        }
        // Reserve the slot first so children come after their parent
        // (pre-order numbering) and cycles cannot recurse forever.
        let new = out.nodes.len();
        out.nodes.push(PNode::Leaf(AbsLeaf::Any)); // placeholder
        if shareable {
            map[id] = Some(new);
        }
        let node = match &self.nodes[id] {
            PNode::Leaf(l) => PNode::Leaf(*l),
            PNode::Int(i) => PNode::Int(*i),
            PNode::Atom(a) => PNode::Atom(*a),
            PNode::Struct(f, args) => {
                let args = args.iter().map(|&a| self.canon_node(a, map, out)).collect();
                PNode::Struct(*f, args)
            }
            PNode::List(e) => PNode::List(self.canon_node(*e, map, out)),
        };
        out.nodes[new] = node;
        new
    }

    // ----- lub -----

    /// Least upper bound of two patterns of the same arity.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ (an internal invariant: the extension
    /// table lubs success patterns of a single predicate).
    pub fn lub(&self, other: &Pattern) -> Pattern {
        assert_eq!(self.arity(), other.arity(), "lub of mismatched arities");
        let mut ctx = LubCtx {
            sides: [self, other],
            memo: Vec::new(),
            occurrences: [vec![0; self.nodes.len()], vec![0; other.nodes.len()]],
            out: Pattern {
                nodes: Vec::new(),
                roots: Vec::new(),
            },
            result_groups: Vec::new(),
        };
        for i in 0..self.arity() {
            let group = vec![(0, self.roots[i]), (1, other.roots[i])];
            let root = ctx.lub_group(group);
            ctx.out.roots.push(root);
        }
        // Aliasing-drop weakening: a source node that participated in more
        // than one distinct group lost (some of) its sharing; `var` leaves
        // built from such nodes must weaken to `any`.
        for (result, group) in ctx.result_groups.iter().enumerate() {
            if matches!(ctx.out.nodes[result], PNode::Leaf(AbsLeaf::Var))
                && group.iter().any(|&(s, n)| ctx.occurrences[s][n] > 1)
            {
                ctx.out.nodes[result] = PNode::Leaf(AbsLeaf::Any);
            }
        }
        ctx.out.canonicalize()
    }

    /// Whether `self` is subsumed by `other` (`self ⊑ other`): every
    /// concrete argument tuple described by `self` is also described by
    /// `other`. Computed through the canonical lub — patterns are kept
    /// canonical, so `self ⊑ other` holds exactly when joining `self`
    /// into `other` adds nothing.
    ///
    /// This is the reuse test of the session layer: a query whose entry
    /// pattern is subsumed by an already-analyzed calling pattern can be
    /// answered from the extension table without running the fixpoint.
    pub fn leq(&self, other: &Pattern) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        self == other || self.lub(other) == *other
    }

    // ----- coverage (the soundness oracle) -----

    /// Whether the concrete argument tuple `args` is described by this
    /// pattern. Shared (aliased) nodes require structurally identical
    /// terms; `var` requires the term to be a variable; `list(α)` requires
    /// a proper list.
    ///
    /// This is the γ-membership check used by the end-to-end soundness
    /// tests: every concrete call observed when running a benchmark must
    /// be covered by the analyzer's extension-table entry.
    pub fn covers(&self, args: &[Term]) -> bool {
        if args.len() != self.arity() {
            return false;
        }
        let mut seen: HashMap<NodeId, Term> = HashMap::new();
        self.roots
            .iter()
            .zip(args)
            .all(|(&r, t)| self.covers_node(r, t, &mut seen))
    }

    fn covers_node(&self, id: NodeId, term: &Term, seen: &mut HashMap<NodeId, Term>) -> bool {
        // Definite sharing: the same node must describe identical terms.
        if self.shared_count(id) > 1 {
            if let Some(prev) = seen.get(&id) {
                if prev != term {
                    return false;
                }
            } else {
                seen.insert(id, term.clone());
            }
        }
        match &self.nodes[id] {
            PNode::Leaf(l) => leaf_covers(*l, term),
            PNode::Int(i) => matches!(term, Term::Int(j) if j == i),
            PNode::Atom(a) => matches!(term, Term::Atom(b) if b == a),
            PNode::Struct(f, nodes) => match term {
                Term::Struct(g, args) if g == f && args.len() == nodes.len() => nodes
                    .iter()
                    .zip(args)
                    .all(|(&n, a)| self.covers_node(n, a, seen)),
                _ => false,
            },
            PNode::List(e) => self.covers_list(*e, term, seen),
        }
    }

    fn covers_list(&self, elem: NodeId, term: &Term, seen: &mut HashMap<NodeId, Term>) -> bool {
        let mut t = term;
        loop {
            match t {
                Term::Atom(_) => {
                    // Must be `[]`; we cannot resolve the symbol here, so
                    // accept any arity-0 atom named like nil by checking
                    // the well-known index.
                    return is_nil_atom(t);
                }
                Term::Struct(f, args) if args.len() == 2 && is_dot_symbol(*f) => {
                    if !self.covers_node(elem, &args[0], seen) {
                        return false;
                    }
                    t = &args[1];
                }
                _ => return false,
            }
        }
    }

    fn shared_count(&self, id: NodeId) -> usize {
        let mut count = self.roots.iter().filter(|&&r| r == id).count();
        // Count in-edges plus root references.
        for node in &self.nodes {
            match node {
                PNode::Struct(_, args) => count += args.iter().filter(|&&a| a == id).count(),
                PNode::List(e) => count += usize::from(*e == id),
                _ => {}
            }
        }
        count
    }

    // ----- parsing and display -----

    /// Parse a pattern from one spec string per argument.
    ///
    /// Specs: `any`, `nv`, `g`/`ground`, `const`, `atom`, `int`/`integer`,
    /// `var`, `glist` (= `list(g)`), `ilist` (= `list(int)`),
    /// `list(<spec>)`, `<integer literal>`.
    ///
    /// Returns `None` on an unrecognized spec.
    pub fn from_spec(specs: &[&str]) -> Option<Pattern> {
        let mut nodes = Vec::new();
        let mut roots = Vec::new();
        for spec in specs {
            let id = parse_spec(spec.trim(), &mut nodes)?;
            roots.push(id);
        }
        Some(Pattern::new(nodes, roots))
    }

    /// Render with `interner` for atom names; shared nodes print as
    /// `#n=…` on first occurrence and `#n` after.
    pub fn display(&self, interner: &Interner) -> String {
        let mut printed: HashMap<NodeId, usize> = HashMap::new();
        let mut next_mark = 0;
        let args: Vec<String> = self
            .roots
            .clone()
            .into_iter()
            .map(|r| self.display_node(r, interner, &mut printed, &mut next_mark))
            .collect();
        format!("({})", args.join(", "))
    }

    fn display_node(
        &self,
        id: NodeId,
        interner: &Interner,
        printed: &mut HashMap<NodeId, usize>,
        next_mark: &mut usize,
    ) -> String {
        let shared = self.shared_count(id) > 1;
        if shared {
            if let Some(mark) = printed.get(&id) {
                return format!("#{mark}");
            }
            let mark = *next_mark;
            *next_mark += 1;
            printed.insert(id, mark);
            let body = self.display_body(id, interner, printed, next_mark);
            return format!("#{mark}={body}");
        }
        self.display_body(id, interner, printed, next_mark)
    }

    fn display_body(
        &self,
        id: NodeId,
        interner: &Interner,
        printed: &mut HashMap<NodeId, usize>,
        next_mark: &mut usize,
    ) -> String {
        match &self.nodes[id] {
            PNode::Leaf(l) => l.to_string(),
            PNode::Int(i) => i.to_string(),
            PNode::Atom(a) => interner.resolve(*a).to_owned(),
            PNode::Struct(f, args) => {
                let name = interner.resolve(*f);
                let args: Vec<String> = args
                    .iter()
                    .map(|&a| self.display_node(a, interner, printed, next_mark))
                    .collect();
                if name == "." && args.len() == 2 {
                    format!("[{}|{}]", args[0], args[1])
                } else {
                    format!("{name}({})", args.join(", "))
                }
            }
            PNode::List(e) => {
                let e = self.display_node(*e, interner, printed, next_mark);
                if e == "g" {
                    "glist".to_owned()
                } else {
                    format!("list({e})")
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Displays without an interner resolve atoms as `atom#N`.
        let mut printed = HashMap::new();
        let mut next_mark = 0;
        let interner = Interner::new();
        let args: Vec<String> = self
            .roots
            .clone()
            .into_iter()
            .map(|r| {
                if self.symbols_in_range(r, interner.len()) {
                    self.display_node(r, &interner, &mut printed, &mut next_mark)
                } else {
                    format!("<node {r}>")
                }
            })
            .collect();
        write!(f, "({})", args.join(", "))
    }
}

impl Pattern {
    fn symbols_in_range(&self, id: NodeId, len: usize) -> bool {
        match &self.nodes[id] {
            PNode::Atom(a) => a.index() < len,
            PNode::Struct(f, args) => {
                f.index() < len && args.iter().all(|&a| self.symbols_in_range(a, len))
            }
            PNode::List(e) => self.symbols_in_range(*e, len),
            _ => true,
        }
    }
}

struct LubCtx<'a> {
    sides: [&'a Pattern; 2],
    /// Group → result node; groups are tiny, linear search wins.
    memo: Vec<(Vec<(usize, NodeId)>, NodeId)>,
    /// How many distinct groups each source node participates in
    /// (dense per side).
    occurrences: [Vec<u8>; 2],
    out: Pattern,
    /// For each result node, the group it was built from.
    result_groups: Vec<Vec<(usize, NodeId)>>,
}

impl LubCtx<'_> {
    /// Lub of a group of source nodes (normally one per side; list
    /// summarization can merge several from one side).
    fn lub_group(&mut self, mut group: Vec<(usize, NodeId)>) -> NodeId {
        group.sort_unstable();
        group.dedup();
        if let Some((_, id)) = self.memo.iter().find(|(g, _)| g == &group) {
            return *id;
        }
        // Reserve result slot (guards against cycles, preserves sharing).
        let result = self.out.nodes.len();
        self.out.nodes.push(PNode::Leaf(AbsLeaf::Any));
        self.result_groups.push(group.clone());
        self.memo.push((group.clone(), result));
        for &(s, n) in &group {
            self.occurrences[s][n] = self.occurrences[s][n].saturating_add(1);
        }

        let node = self.compute(&group);
        self.out.nodes[result] = node;
        result
    }

    fn compute(&mut self, group: &[(usize, NodeId)]) -> PNode {
        let views: Vec<&PNode> = group.iter().map(|&(s, n)| self.sides[s].node(n)).collect();

        // All identical integers / atoms.
        if let PNode::Int(i) = views[0] {
            if views.iter().all(|v| matches!(v, PNode::Int(j) if j == i)) {
                return PNode::Int(*i);
            }
        }
        if let PNode::Atom(a) = views[0] {
            if views.iter().all(|v| matches!(v, PNode::Atom(b) if b == a)) {
                return PNode::Atom(*a);
            }
        }
        // All structs with the same functor (including cons/cons).
        if let PNode::Struct(f, args0) = views[0] {
            let arity = args0.len();
            if views
                .iter()
                .all(|v| matches!(v, PNode::Struct(g, a) if g == f && a.len() == arity))
            {
                let f = *f;
                let mut children = Vec::with_capacity(arity);
                for i in 0..arity {
                    let child_group: Vec<(usize, NodeId)> = group
                        .iter()
                        .map(|&(s, n)| {
                            let PNode::Struct(_, args) = self.sides[s].node(n) else {
                                unreachable!()
                            };
                            (s, args[i])
                        })
                        .collect();
                    children.push(self.lub_group(child_group));
                }
                return PNode::Struct(f, children);
            }
        }
        // All list-shaped (List / nil / cons chains) → α-list.
        if let Some(elem_groups) = self.try_list_view(group) {
            if elem_groups.is_empty() {
                // All nil.
                return PNode::Atom(nil_symbol());
            }
            let elem = self.lub_group(elem_groups);
            return PNode::List(elem);
        }
        // Fallback: leaf lub of primary approximations.
        let mut leaf = self.sides[group[0].0].leaf_approx(group[0].1);
        for &(s, n) in &group[1..] {
            leaf = leaf.lub(self.sides[s].leaf_approx(n));
        }
        PNode::Leaf(leaf)
    }

    /// If every member of the group is list-shaped, return the union of
    /// their element nodes (to be lubbed into the α parameter). `None` if
    /// any member is not a (proper-)list shape.
    fn try_list_view(&self, group: &[(usize, NodeId)]) -> Option<Vec<(usize, NodeId)>> {
        let mut elems = Vec::new();
        for &(s, n) in group {
            self.collect_list_elems(s, n, &mut elems, 0)?;
        }
        Some(elems)
    }

    fn collect_list_elems(
        &self,
        side: usize,
        node: NodeId,
        elems: &mut Vec<(usize, NodeId)>,
        depth: usize,
    ) -> Option<()> {
        if depth > 64 {
            return None;
        }
        match self.sides[side].node(node) {
            PNode::List(e) => {
                elems.push((side, *e));
                Some(())
            }
            PNode::Atom(a) if *a == nil_symbol() => Some(()),
            PNode::Struct(f, args) if is_dot_symbol(*f) && args.len() == 2 => {
                elems.push((side, args[0]));
                self.collect_list_elems(side, args[1], elems, depth + 1)
            }
            _ => None,
        }
    }
}

fn leaf_covers(leaf: AbsLeaf, term: &Term) -> bool {
    use AbsLeaf::*;
    match leaf {
        Any => true,
        Var => matches!(term, Term::Var(_)),
        NonVar => !matches!(term, Term::Var(_)),
        Ground => term.is_ground(),
        Const => matches!(term, Term::Atom(_) | Term::Int(_)),
        Atom => matches!(term, Term::Atom(_)),
        Integer => matches!(term, Term::Int(_)),
    }
}

/// The well-known `[]` and `'.'` symbols (fixed indices in every
/// [`Interner`]).
fn well_known() -> (Symbol, Symbol) {
    static CELL: std::sync::OnceLock<(usize, usize)> = std::sync::OnceLock::new();
    let &(nil, dot) = CELL.get_or_init(|| {
        let i = Interner::new();
        (i.nil().index(), i.dot().index())
    });
    (Symbol::from_index(nil), Symbol::from_index(dot))
}

/// The well-known `[]` symbol (fixed index in every [`Interner`]).
pub fn nil_symbol() -> Symbol {
    well_known().0
}

/// The well-known `'.'` symbol (fixed index in every [`Interner`]).
pub fn dot_symbol() -> Symbol {
    well_known().1
}

/// Whether `sym` is the well-known `'.'` symbol.
pub fn is_dot_symbol(sym: Symbol) -> bool {
    sym == well_known().1
}

fn is_nil_atom(term: &Term) -> bool {
    matches!(term, Term::Atom(a) if *a == nil_symbol())
}

fn parse_spec(spec: &str, nodes: &mut Vec<PNode>) -> Option<NodeId> {
    let push = |nodes: &mut Vec<PNode>, n: PNode| {
        nodes.push(n);
        nodes.len() - 1
    };
    if let Ok(i) = spec.parse::<i64>() {
        return Some(push(nodes, PNode::Int(i)));
    }
    let leaf = match spec {
        "any" => Some(AbsLeaf::Any),
        "nv" | "nonvar" => Some(AbsLeaf::NonVar),
        "g" | "ground" => Some(AbsLeaf::Ground),
        "const" => Some(AbsLeaf::Const),
        "atom" => Some(AbsLeaf::Atom),
        "int" | "integer" => Some(AbsLeaf::Integer),
        "var" => Some(AbsLeaf::Var),
        _ => None,
    };
    if let Some(l) = leaf {
        return Some(push(nodes, PNode::Leaf(l)));
    }
    match spec {
        "glist" => {
            let e = push(nodes, PNode::Leaf(AbsLeaf::Ground));
            Some(push(nodes, PNode::List(e)))
        }
        "ilist" => {
            let e = push(nodes, PNode::Leaf(AbsLeaf::Integer));
            Some(push(nodes, PNode::List(e)))
        }
        "nil" | "[]" => Some(push(nodes, PNode::Atom(nil_symbol()))),
        _ => {
            let inner = spec.strip_prefix("list(")?.strip_suffix(')')?;
            let e = parse_spec(inner, nodes)?;
            Some(push(nodes, PNode::List(e)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prolog_syntax::parse_term;

    fn spec(s: &[&str]) -> Pattern {
        Pattern::from_spec(s).expect("valid spec")
    }

    fn term(src: &str) -> Term {
        parse_term(src).unwrap().0
    }

    #[test]
    fn spec_parsing_and_equality() {
        assert_eq!(spec(&["glist"]), spec(&["list(g)"]));
        assert_ne!(spec(&["glist"]), spec(&["list(any)"]));
        assert_eq!(spec(&["any", "var"]).arity(), 2);
        assert!(Pattern::from_spec(&["bogus"]).is_none());
        assert_eq!(spec(&["list(list(int))"]).arity(), 1);
    }

    #[test]
    fn canonical_equality_is_structural() {
        // Build the same shape with scrambled node order.
        let a = Pattern::new(vec![PNode::Leaf(AbsLeaf::Ground), PNode::List(0)], vec![1]);
        let b = Pattern::new(
            vec![
                PNode::List(2),
                PNode::Leaf(AbsLeaf::Atom),
                PNode::Leaf(AbsLeaf::Ground),
            ],
            vec![0],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn sharing_is_part_of_identity() {
        // (var, var) unshared vs (X, X) shared.
        let unshared = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Leaf(AbsLeaf::Var)],
            vec![0, 1],
        );
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        assert_ne!(unshared, shared);
    }

    #[test]
    fn lub_of_equal_is_identity() {
        for s in [
            vec!["any"],
            vec!["glist", "var"],
            vec!["atom", "int", "list(any)"],
        ] {
            let p = spec(&s);
            assert_eq!(p.lub(&p), p, "{s:?}");
        }
    }

    #[test]
    fn lub_leaf_examples() {
        assert_eq!(spec(&["atom"]).lub(&spec(&["int"])), spec(&["const"]));
        assert_eq!(spec(&["var"]).lub(&spec(&["g"])), spec(&["any"]));
        assert_eq!(spec(&["g"]).lub(&spec(&["nv"])), spec(&["nv"]));
    }

    #[test]
    fn lub_lists() {
        assert_eq!(spec(&["glist"]).lub(&spec(&["glist"])), spec(&["glist"]));
        assert_eq!(
            spec(&["glist"]).lub(&spec(&["list(any)"])),
            spec(&["list(any)"])
        );
        assert_eq!(spec(&["glist"]).lub(&spec(&["nil"])), spec(&["glist"]));
        // list vs non-list struct falls back to a leaf.
        let mut nodes = Vec::new();
        let a = nodes.len();
        nodes.push(PNode::Leaf(AbsLeaf::Ground));
        let f = prolog_syntax::Interner::new().intern("f");
        let s = PNode::Struct(f, vec![a]);
        nodes.push(s);
        let strct = Pattern::new(nodes, vec![1]);
        assert_eq!(spec(&["glist"]).lub(&strct), spec(&["g"]));
    }

    #[test]
    fn lub_cons_with_list_summarizes() {
        // [g|glist] ⊔ glist = glist
        let mut nodes = Vec::new();
        nodes.push(PNode::Leaf(AbsLeaf::Ground)); // 0: g (car)
        nodes.push(PNode::Leaf(AbsLeaf::Ground)); // 1: g (list elem)
        nodes.push(PNode::List(1)); // 2: glist (cdr)
        let dot = prolog_syntax::Interner::new().dot();
        nodes.push(PNode::Struct(dot, vec![0, 2])); // 3: [g|glist]
        let cons = Pattern::new(nodes, vec![3]);
        assert_eq!(cons.lub(&spec(&["glist"])), spec(&["glist"]));
    }

    #[test]
    fn lub_keeps_sharing_present_on_both_sides() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        let joined = shared.lub(&shared);
        assert_eq!(joined, shared);
    }

    #[test]
    fn lub_drops_one_sided_sharing_and_weakens_var() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        let unshared = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Leaf(AbsLeaf::Var)],
            vec![0, 1],
        );
        let joined = shared.lub(&unshared);
        // Sharing dropped, and var weakened to any (the dropped alias may
        // bind through the other occurrence).
        assert_eq!(joined, spec(&["any", "any"]));
    }

    #[test]
    fn lub_is_commutative_and_monotone_on_samples() {
        let samples = [
            spec(&["any", "var"]),
            spec(&["glist", "g"]),
            spec(&["atom", "int"]),
            spec(&["nv", "list(any)"]),
            Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]),
        ];
        for p in &samples {
            for q in &samples {
                assert_eq!(p.lub(q), q.lub(p));
                let j = p.lub(q);
                // lub is an upper bound in the coverage sense: anything
                // covered by p is covered by j (spot-check with terms).
                for t in ["f(a)", "[1, 2]", "7", "foo"] {
                    let t1 = term(t);
                    let t2 = term(t);
                    if p.covers(&[t1.clone(), t2.clone()]) {
                        assert!(j.covers(&[t1, t2]), "{p} ⊑ {j} violated on {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn covers_leaves() {
        assert!(spec(&["any"]).covers(&[term("f(X)")]));
        assert!(spec(&["g"]).covers(&[term("f(a, [1])")]));
        assert!(!spec(&["g"]).covers(&[term("f(X)")]));
        assert!(spec(&["var"]).covers(&[term("X")]));
        assert!(!spec(&["var"]).covers(&[term("a")]));
        assert!(spec(&["atom"]).covers(&[term("foo")]));
        assert!(!spec(&["atom"]).covers(&[term("3")]));
        assert!(spec(&["const"]).covers(&[term("3")]));
        assert!(spec(&["nv"]).covers(&[term("f(X)")]));
    }

    #[test]
    fn covers_lists() {
        assert!(spec(&["glist"]).covers(&[term("[1, 2, 3]")]));
        assert!(spec(&["glist"]).covers(&[term("[]")]));
        assert!(!spec(&["glist"]).covers(&[term("[1|X]")]));
        assert!(!spec(&["glist"]).covers(&[term("[X]")]));
        assert!(spec(&["list(any)"]).covers(&[term("[X, 1]")]));
        assert!(spec(&["ilist"]).covers(&[term("[1, 2]")]));
        assert!(!spec(&["ilist"]).covers(&[term("[a]")]));
    }

    #[test]
    fn covers_respects_sharing() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Any)], vec![0, 0]);
        // Parse both argument terms together so they share one interner.
        let Term::Struct(_, args) = term("pair(f(a), f(a), g(b))") else {
            panic!()
        };
        assert!(shared.covers(&[args[0].clone(), args[1].clone()]));
        assert!(!shared.covers(&[args[0].clone(), args[2].clone()]));
    }

    #[test]
    fn display_formats() {
        let interner = Interner::new();
        assert_eq!(spec(&["glist", "var"]).display(&interner), "(glist, var)");
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        assert_eq!(shared.display(&interner), "(#0=var, #0)");
    }

    #[test]
    fn ground_subgraphs_are_unshared_by_canonicalization() {
        // Two roots sharing one ground list node → duplicated.
        let nodes = vec![PNode::Leaf(AbsLeaf::Ground), PNode::List(0)];
        let p = Pattern::new(nodes, vec![1, 1]);
        assert_eq!(p, spec(&["glist", "glist"]));
    }
}
