//! Domain-precision ablations: controlled weakenings of patterns.
//!
//! The paper's §7 frames analyzer design as a time/precision trade-off
//! ("more precise dataflow analysis can be used if the analyzer is more
//! efficient") and credits its domain as "considerably more complex" than
//! the Aquarius analyzer's. [`DomainConfig`] lets the analysis run with
//! selected parts of the domain disabled — aliasing, `α-list` types,
//! `struct(f/n, …)` shapes — by weakening every pattern at the extraction
//! boundary, so the precision each feature buys can be measured.

use crate::leaf::AbsLeaf;
use crate::pattern::{PNode, Pattern};

/// Which components of the abstract domain are enabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DomainConfig {
    /// Track definite aliasing between argument positions.
    pub aliasing: bool,
    /// Keep `α-list` types (otherwise lists collapse to `g`/`nv`).
    pub list_types: bool,
    /// Keep `struct(f/n, …)` shapes (otherwise structures collapse to
    /// `g`/`nv`; cons cells may still convert to list types when those
    /// are enabled).
    pub struct_types: bool,
}

impl DomainConfig {
    /// The paper's full domain.
    pub const FULL: DomainConfig = DomainConfig {
        aliasing: true,
        list_types: true,
        struct_types: true,
    };

    /// Whether this is the full domain (no weakening needed).
    pub fn is_full(self) -> bool {
        self == DomainConfig::FULL
    }
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig::FULL
    }
}

impl Pattern {
    /// Weaken this pattern according to `config`. With the full config
    /// this is the identity.
    pub fn weaken(&self, config: DomainConfig) -> Pattern {
        if config.is_full() {
            return self.clone();
        }
        let mut out_nodes: Vec<PNode> = Vec::new();
        // Count references so dropped sharing can weaken `var` soundly.
        let mut refs = vec![0usize; self.nodes().len()];
        for i in 0..self.arity() {
            refs[self.root(i)] += 1;
        }
        for node in self.nodes() {
            match node {
                PNode::Struct(_, args) => {
                    for &a in args {
                        refs[a] += 1;
                    }
                }
                PNode::List(e) => refs[*e] += 1,
                _ => {}
            }
        }
        let mut memo: Vec<Option<usize>> = vec![None; self.nodes().len()];
        let roots = (0..self.arity())
            .map(|i| self.weaken_node(self.root(i), config, &refs, &mut memo, &mut out_nodes))
            .collect();
        Pattern::new(out_nodes, roots)
    }

    fn weaken_node(
        &self,
        id: usize,
        config: DomainConfig,
        refs: &[usize],
        memo: &mut Vec<Option<usize>>,
        out: &mut Vec<PNode>,
    ) -> usize {
        // With aliasing on, preserve sharing through the memo; with it
        // off, re-emit the subgraph per occurrence.
        if config.aliasing {
            if let Some(n) = memo[id] {
                return n;
            }
        }
        let push = |out: &mut Vec<PNode>, n: PNode| {
            out.push(n);
            out.len() - 1
        };
        let shared_here = refs[id] > 1;
        let new = match self.node(id) {
            PNode::Leaf(AbsLeaf::Var) if !config.aliasing && shared_here => {
                // Dropped aliasing: a multiply-referenced var may be bound
                // through another occurrence — weaken to any (the same
                // rule the lub applies, DESIGN.md §3.4).
                push(out, PNode::Leaf(AbsLeaf::Any))
            }
            PNode::Leaf(l) => push(out, PNode::Leaf(*l)),
            PNode::Int(i) => push(out, PNode::Int(*i)),
            PNode::Atom(a) => push(out, PNode::Atom(*a)),
            PNode::List(e) => {
                if config.list_types {
                    let slot = push(out, PNode::Leaf(AbsLeaf::Any));
                    if config.aliasing {
                        memo[id] = Some(slot);
                    }
                    let e = self.weaken_node(*e, config, refs, memo, out);
                    out[slot] = PNode::List(e);
                    return slot;
                }
                push(out, PNode::Leaf(self.collapse_leaf(id, config)))
            }
            PNode::Struct(f, args) => {
                let is_cons = crate::pattern::is_dot_symbol(*f) && args.len() == 2;
                let keep = config.struct_types || (is_cons && config.list_types);
                if keep {
                    let slot = push(out, PNode::Leaf(AbsLeaf::Any));
                    if config.aliasing {
                        memo[id] = Some(slot);
                    }
                    let args: Vec<usize> = args
                        .iter()
                        .map(|&a| self.weaken_node(a, config, refs, memo, out))
                        .collect();
                    out[slot] = PNode::Struct(*f, args);
                    return slot;
                }
                push(out, PNode::Leaf(self.collapse_leaf(id, config)))
            }
        };
        if config.aliasing {
            memo[id] = Some(new);
        }
        new
    }

    /// The leaf a collapsed subgraph becomes. Groundness is preserved;
    /// everything else collapses to `nv` (subgraphs here are always
    /// compound, hence nonvar). A reachable dropped-`var` does not affect
    /// groundness (a subgraph containing `var` is non-ground anyway).
    fn collapse_leaf(&self, id: usize, _config: DomainConfig) -> AbsLeaf {
        if self.node_is_ground(id) {
            AbsLeaf::Ground
        } else {
            AbsLeaf::NonVar
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &[&str]) -> Pattern {
        Pattern::from_spec(s).unwrap()
    }

    const NO_LISTS: DomainConfig = DomainConfig {
        aliasing: true,
        list_types: false,
        struct_types: true,
    };
    const NO_STRUCTS: DomainConfig = DomainConfig {
        aliasing: true,
        list_types: true,
        struct_types: false,
    };
    const NO_ALIASING: DomainConfig = DomainConfig {
        aliasing: false,
        list_types: true,
        struct_types: true,
    };
    const LEAVES_ONLY: DomainConfig = DomainConfig {
        aliasing: false,
        list_types: false,
        struct_types: false,
    };

    #[test]
    fn full_config_is_identity() {
        for s in [vec!["glist", "var"], vec!["atom"], vec!["list(any)", "g"]] {
            let p = spec(&s);
            assert_eq!(p.weaken(DomainConfig::FULL), p);
        }
    }

    #[test]
    fn lists_collapse_by_groundness() {
        assert_eq!(spec(&["glist"]).weaken(NO_LISTS), spec(&["g"]));
        assert_eq!(spec(&["list(any)"]).weaken(NO_LISTS), spec(&["nv"]));
        // Leaves survive untouched.
        assert_eq!(
            spec(&["var", "atom"]).weaken(NO_LISTS),
            spec(&["var", "atom"])
        );
    }

    #[test]
    fn structs_collapse_but_cons_can_stay_as_list_info() {
        let f = prolog_syntax::Interner::new().intern("f");
        let ground_struct = Pattern::new(vec![PNode::Int(1), PNode::Struct(f, vec![0])], vec![1]);
        assert_eq!(ground_struct.weaken(NO_STRUCTS), spec(&["g"]));
        let open_struct = Pattern::new(
            vec![PNode::Leaf(AbsLeaf::Var), PNode::Struct(f, vec![0])],
            vec![1],
        );
        assert_eq!(open_struct.weaken(NO_STRUCTS), spec(&["nv"]));
        // A cons keeps its shape when list types are on (it carries list
        // information).
        let dot = crate::pattern::dot_symbol();
        let cons = Pattern::new(
            vec![
                PNode::Leaf(AbsLeaf::Ground),
                PNode::Leaf(AbsLeaf::Ground),
                PNode::List(1),
                PNode::Struct(dot, vec![0, 2]),
            ],
            vec![3],
        );
        assert_eq!(cons.weaken(NO_STRUCTS), cons);
    }

    #[test]
    fn aliasing_drop_weakens_shared_vars() {
        let shared = Pattern::new(vec![PNode::Leaf(AbsLeaf::Var)], vec![0, 0]);
        assert_eq!(shared.weaken(NO_ALIASING), spec(&["any", "any"]));
        // Unshared vars keep their freeness.
        assert_eq!(
            spec(&["var", "var"]).weaken(NO_ALIASING),
            spec(&["var", "var"])
        );
        // Shared non-var leaves just unshare.
        let shared_any = Pattern::new(vec![PNode::Leaf(AbsLeaf::Any)], vec![0, 0]);
        assert_eq!(shared_any.weaken(NO_ALIASING), spec(&["any", "any"]));
    }

    #[test]
    fn leaves_only_is_aquarius_coarse() {
        let p = spec(&["glist", "list(any)", "var", "atom"]);
        assert_eq!(p.weaken(LEAVES_ONLY), spec(&["g", "nv", "var", "atom"]));
    }

    #[test]
    fn weaken_is_an_upper_bound() {
        use prolog_syntax::parse_term;
        let patterns = [spec(&["glist"]), spec(&["list(any)"]), spec(&["nv"])];
        let configs = [NO_LISTS, NO_STRUCTS, NO_ALIASING, LEAVES_ONLY];
        for p in &patterns {
            for c in configs {
                let w = p.weaken(c);
                for t in ["[1, 2]", "[]", "f(a)"] {
                    let term = parse_term(t).unwrap().0;
                    if p.covers(std::slice::from_ref(&term)) {
                        assert!(
                            w.covers(std::slice::from_ref(&term)),
                            "weaken({c:?}) lost coverage of {t}"
                        );
                    }
                }
            }
        }
    }
}
