//! Hash-consing for the abstract domain: a [`PatternInterner`] arena
//! mapping canonical [`Pattern`] graphs to dense [`PatternId`]s, plus a
//! per-session overlay ([`SessionInterner`]) with id-keyed memo caches
//! for the lattice operations.
//!
//! # Why interning is sound
//!
//! Patterns are *canonical* (see `pattern.rs`: first-visit DFS numbering,
//! ground subgraphs unshared), so structural equality coincides with
//! semantic equality of domain elements. Interning therefore preserves
//! the lattice exactly: two ids are equal **iff** the patterns they name
//! are the same domain element, which turns every equality test on the
//! extension-table hot path into an integer compare.
//!
//! Patterns are immutable and the lattice operations are pure, so the
//! memo caches never need invalidation — an entry, once computed, is
//! correct forever.
//!
//! # Sharing across threads
//!
//! A [`PatternInterner`] can be frozen into an `Arc` and shared
//! read-only by any number of [`SessionInterner`] overlays: the overlay
//! probes the shared base first and falls back to a private local arena
//! whose ids start where the base ids end. Batch workers therefore stay
//! lock-free — nothing in this module takes a lock.

use crate::pattern::{LubScratch, Pattern};
use awam_obs::InternStats;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::Arc;

/// A dense id naming one interned canonical [`Pattern`].
///
/// Ids are only meaningful relative to the interner that produced them;
/// within one interner, `a == b` iff the named patterns are equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PatternId(u32);

impl PatternId {
    /// The id as a plain index (dense, starting at zero).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fast deterministic hasher (the rustc/firefox multiply-rotate-xor
/// scheme): fixed seed, no per-instance randomness, so arena layout and
/// any future iteration order are stable across runs. Consults re-hash a
/// whole pattern on every table probe, so this sits on the hot path —
/// SipHash (`DefaultHasher`) costs several times more per node here.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
}

/// Deterministic hash map: fixed-seed [`FxHasher`] instead of the
/// per-instance random seeds of `RandomState`, so map behavior (and any
/// iteration order) is identical across runs. Used for the arena index
/// and memo caches here, and exported for id-keyed indexes elsewhere.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

type DetHashMap<K, V> = FxHashMap<K, V>;

/// How many trailing nodes participate in a pattern's bucket hash.
const HASH_SUFFIX_NODES: usize = 12;

/// Bucket hash for a pattern: arity, node count, and a bounded *suffix*
/// of the node table. A suffix is enough — the hash only has to
/// *distribute* (membership is always confirmed by full structural
/// equality), so hashing the whole graph would spend O(n) on every
/// consult for no correctness gain. The suffix is the right bound:
/// canonical numbering is pre-order, and the calling patterns that share
/// a table (one predicate's call sites) share their argument skeleton
/// and diverge in the deep leaves — the *end* of the node vector.
/// Patterns that still collide merely share a bucket and pay an extra
/// equality check.
fn pattern_hash(p: &Pattern) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(p.arity());
    let nodes = p.nodes();
    h.write_usize(nodes.len());
    let tail = nodes.len().saturating_sub(HASH_SUFFIX_NODES);
    for node in &nodes[tail..] {
        node.hash(&mut h);
    }
    h.finish()
}

/// Estimated heap bytes held by a pattern's node and root vectors (what
/// a deduplicated intern avoids keeping alive).
fn pattern_heap_bytes(p: &Pattern) -> u64 {
    let nodes = std::mem::size_of_val(p.nodes());
    let roots = p.arity() * std::mem::size_of::<usize>();
    (nodes + roots) as u64
}

/// A hash-consed arena of canonical patterns.
///
/// Each distinct pattern is stored exactly once; the side index maps a
/// pattern's hash to candidate arena slots, so the pattern bytes are
/// never duplicated as map keys. Groundness is precomputed per slot.
#[derive(Clone, Debug, Default)]
pub struct PatternInterner {
    arena: Vec<Pattern>,
    ground: Vec<bool>,
    index: DetHashMap<u64, Vec<u32>>,
}

impl PatternInterner {
    /// An empty interner.
    pub fn new() -> PatternInterner {
        PatternInterner::default()
    }

    /// Number of interned patterns.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Intern `pattern`, returning its id and whether it was already
    /// present (`true` = deduplicated, the argument was dropped).
    pub fn intern(&mut self, pattern: Pattern) -> (PatternId, bool) {
        self.intern_hashed(pattern_hash(&pattern), pattern)
    }

    /// The id of `pattern` if it is already interned (no insertion).
    pub fn lookup(&self, pattern: &Pattern) -> Option<PatternId> {
        self.lookup_hashed(pattern_hash(pattern), pattern)
    }

    /// [`PatternInterner::intern`] with the bucket hash already computed
    /// (lets the session overlay hash a probe exactly once).
    fn intern_hashed(&mut self, hash: u64, pattern: Pattern) -> (PatternId, bool) {
        let bucket = self.index.entry(hash).or_default();
        for &slot in bucket.iter() {
            if self.arena[slot as usize] == pattern {
                return (PatternId(slot), true);
            }
        }
        let slot = u32::try_from(self.arena.len()).expect("interner overflow");
        bucket.push(slot);
        self.ground.push(pattern.is_ground());
        self.arena.push(pattern);
        (PatternId(slot), false)
    }

    /// [`PatternInterner::intern_hashed`], clone-on-miss: the probe is by
    /// reference and the pattern is only cloned if it must be inserted.
    fn intern_ref_hashed(&mut self, hash: u64, pattern: &Pattern) -> (PatternId, bool) {
        let bucket = self.index.entry(hash).or_default();
        for &slot in bucket.iter() {
            if self.arena[slot as usize] == *pattern {
                return (PatternId(slot), true);
            }
        }
        let slot = u32::try_from(self.arena.len()).expect("interner overflow");
        bucket.push(slot);
        self.ground.push(pattern.is_ground());
        self.arena.push(pattern.clone());
        (PatternId(slot), false)
    }

    /// [`PatternInterner::lookup`] with the bucket hash already computed.
    fn lookup_hashed(&self, hash: u64, pattern: &Pattern) -> Option<PatternId> {
        self.index.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&slot| &self.arena[slot as usize] == pattern)
                .map(|&slot| PatternId(slot))
        })
    }

    /// The pattern named by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner.
    pub fn resolve(&self, id: PatternId) -> &Pattern {
        &self.arena[id.index()]
    }

    /// Whether the pattern named by `id` is ground (precomputed).
    pub fn is_ground(&self, id: PatternId) -> bool {
        self.ground[id.index()]
    }
}

/// A session-private interner layered over a shared read-only base.
///
/// Owned by one analysis session (or one batch worker): probes the
/// `Arc`-shared base arena first, falls back to a private local arena
/// whose ids are offset past the base, and memoizes `lub`/`leq` by id
/// pair. No locks anywhere; clones of the `Arc` are the only sharing.
#[derive(Clone, Debug)]
pub struct SessionInterner {
    base: Arc<PatternInterner>,
    local: PatternInterner,
    lub_cache: DetHashMap<(PatternId, PatternId), PatternId>,
    leq_cache: DetHashMap<(PatternId, PatternId), bool>,
    lub_scratch: LubScratch,
    stats: InternStats,
}

impl Default for SessionInterner {
    fn default() -> Self {
        SessionInterner::new(Arc::new(PatternInterner::new()))
    }
}

impl SessionInterner {
    /// An overlay over `base` with an empty local arena and caches. The
    /// memo caches are pre-sized past the benchmark suite's high-water
    /// marks, so an analysis run never pays a mid-fixpoint rehash.
    pub fn new(base: Arc<PatternInterner>) -> SessionInterner {
        SessionInterner {
            base,
            local: PatternInterner::new(),
            lub_cache: DetHashMap::with_capacity_and_hasher(512, Default::default()),
            leq_cache: DetHashMap::with_capacity_and_hasher(1024, Default::default()),
            lub_scratch: LubScratch::default(),
            stats: InternStats::default(),
        }
    }

    /// The shared base arena this overlay reads through to.
    pub fn base(&self) -> &Arc<PatternInterner> {
        &self.base
    }

    /// Total patterns reachable (base + session-local).
    pub fn len(&self) -> usize {
        self.base.len() + self.local.len()
    }

    /// Whether no pattern is interned at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters accumulated by this overlay.
    pub fn stats(&self) -> &InternStats {
        &self.stats
    }

    /// Intern `pattern` (base arena first, then the local overlay). The
    /// probe is hashed exactly once, shared by both arena lookups.
    pub fn intern(&mut self, pattern: Pattern) -> PatternId {
        let hash = pattern_hash(&pattern);
        if let Some(id) = self.base.lookup_hashed(hash, &pattern) {
            self.stats.intern_hits += 1;
            self.stats.bytes_saved += pattern_heap_bytes(&pattern);
            return id;
        }
        let offset = self.base.len() as u32;
        let bytes = pattern_heap_bytes(&pattern);
        let (PatternId(local), hit) = self.local.intern_hashed(hash, pattern);
        if hit {
            self.stats.intern_hits += 1;
            self.stats.bytes_saved += bytes;
        } else {
            self.stats.intern_misses += 1;
        }
        PatternId(offset + local)
    }

    /// [`SessionInterner::intern`], clone-on-miss: callers that build
    /// their probe in a reusable scratch buffer pass it by reference, and
    /// the bytes are copied only when the pattern is genuinely new. The
    /// counters are identical to the owning variant.
    pub fn intern_ref(&mut self, pattern: &Pattern) -> PatternId {
        let hash = pattern_hash(pattern);
        if let Some(id) = self.base.lookup_hashed(hash, pattern) {
            self.stats.intern_hits += 1;
            self.stats.bytes_saved += pattern_heap_bytes(pattern);
            return id;
        }
        let offset = self.base.len() as u32;
        let bytes = pattern_heap_bytes(pattern);
        let (PatternId(local), hit) = self.local.intern_ref_hashed(hash, pattern);
        if hit {
            self.stats.intern_hits += 1;
            self.stats.bytes_saved += bytes;
        } else {
            self.stats.intern_misses += 1;
        }
        PatternId(offset + local)
    }

    /// The id of `pattern` if already interned, without inserting and
    /// without touching the counters (for debug-only consistency checks).
    pub fn lookup(&self, pattern: &Pattern) -> Option<PatternId> {
        let hash = pattern_hash(pattern);
        if let Some(id) = self.base.lookup_hashed(hash, pattern) {
            return Some(id);
        }
        let offset = self.base.len() as u32;
        self.local
            .lookup_hashed(hash, pattern)
            .map(|PatternId(local)| PatternId(offset + local))
    }

    /// The pattern named by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this overlay (or its base).
    pub fn resolve(&self, id: PatternId) -> &Pattern {
        let offset = self.base.len();
        if id.index() < offset {
            self.base.resolve(id)
        } else {
            self.local.resolve(PatternId((id.index() - offset) as u32))
        }
    }

    /// Whether the pattern named by `id` is ground (precomputed at
    /// intern time; no graph walk).
    pub fn is_ground(&self, id: PatternId) -> bool {
        let offset = self.base.len();
        if id.index() < offset {
            self.base.is_ground(id)
        } else {
            self.local
                .is_ground(PatternId((id.index() - offset) as u32))
        }
    }

    /// Memoized least upper bound: `a ⊔ b`, computed at most once per
    /// unordered id pair (lub is commutative, so `(a, b)` and `(b, a)`
    /// share a cache slot; `a ⊔ a = a` by idempotence without a lookup).
    pub fn lub(&mut self, a: PatternId, b: PatternId) -> PatternId {
        self.stats.lub_calls += 1;
        if a == b {
            self.stats.lub_cache_hits += 1;
            return a;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&id) = self.lub_cache.get(&key) {
            self.stats.lub_cache_hits += 1;
            return id;
        }
        // Cache miss: structural lub through the reusable scratch (taken
        // and returned around the call so `resolve` can borrow the
        // arenas). `lub_in` leaves the canonical join inside the scratch
        // and `intern_ref` clones it only if the arena has never seen it,
        // so a warm lub touches the allocator zero times.
        let mut scratch = std::mem::take(&mut self.lub_scratch);
        let joined = self.resolve(a).lub_in(self.resolve(b), &mut scratch);
        let id = self.intern_ref(joined);
        self.lub_scratch = scratch;
        self.lub_cache.insert(key, id);
        id
    }

    /// Memoized partial-order test: `a ⊑ b`. A miss computes through the
    /// lub cache (`a ⊑ b ⟺ a ⊔ b = b`), warming it for later joins.
    pub fn leq(&mut self, a: PatternId, b: PatternId) -> bool {
        self.stats.leq_calls += 1;
        if a == b {
            self.stats.leq_cache_hits += 1;
            return true;
        }
        if let Some(&ans) = self.leq_cache.get(&(a, b)) {
            self.stats.leq_cache_hits += 1;
            return ans;
        }
        let ans = self.lub(a, b) == b;
        self.leq_cache.insert((a, b), ans);
        ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(specs: &[&str]) -> Pattern {
        Pattern::from_spec(specs).unwrap()
    }

    #[test]
    fn interning_deduplicates() {
        let mut i = PatternInterner::new();
        let (a, hit_a) = i.intern(pat(&["glist", "var"]));
        let (b, hit_b) = i.intern(pat(&["glist", "var"]));
        let (c, _) = i.intern(pat(&["any", "var"]));
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), &pat(&["glist", "var"]));
        assert_eq!(i.lookup(&pat(&["any", "var"])), Some(c));
        assert_eq!(i.lookup(&pat(&["int"])), None);
        let (ground_id, _) = i.intern(pat(&["g", "atom"]));
        assert!(i.is_ground(ground_id));
        assert!(!i.is_ground(a));
    }

    #[test]
    fn overlay_ids_extend_the_base() {
        let mut base = PatternInterner::new();
        let (base_id, _) = base.intern(pat(&["glist"]));
        let mut s = SessionInterner::new(Arc::new(base));
        // Base hit: same id, no local growth.
        assert_eq!(s.intern(pat(&["glist"])), base_id);
        assert_eq!(s.stats().intern_hits, 1);
        // Local miss: id past the base range.
        let local = s.intern(pat(&["var"]));
        assert_eq!(local.index(), 1);
        assert_eq!(s.stats().intern_misses, 1);
        assert_eq!(s.resolve(local), &pat(&["var"]));
        assert_eq!(s.lookup(&pat(&["glist"])), Some(base_id));
        assert_eq!(s.lookup(&pat(&["var"])), Some(local));
        assert_eq!(s.lookup(&pat(&["int"])), None);
        assert_eq!(s.len(), 2);
        // Deduplicated re-intern reports saved bytes.
        assert_eq!(s.intern(pat(&["var"])), local);
        assert!(s.stats().bytes_saved > 0);
    }

    #[test]
    fn memoized_lub_and_leq_match_direct_computation() {
        let mut s = SessionInterner::default();
        let a = s.intern(pat(&["atom", "var"]));
        let b = s.intern(pat(&["int", "var"]));
        let direct = pat(&["atom", "var"]).lub(&pat(&["int", "var"]));
        let joined = s.lub(a, b);
        assert_eq!(s.resolve(joined), &direct);
        assert_eq!(s.stats().lub_calls, 1);
        assert_eq!(s.stats().lub_cache_hits, 0);
        // Commutative cache slot.
        assert_eq!(s.lub(b, a), joined);
        assert_eq!(s.stats().lub_cache_hits, 1);
        // leq agrees with the direct order.
        assert!(s.leq(a, joined));
        assert!(!s.leq(joined, a));
        assert!(s.leq(a, a));
        // Cached on repeat.
        let hits = s.stats().leq_cache_hits;
        assert!(s.leq(a, joined));
        assert_eq!(s.stats().leq_cache_hits, hits + 1);
    }

    #[test]
    fn groundness_is_precomputed_and_correct() {
        let mut s = SessionInterner::default();
        for specs in [&["g", "glist"][..], &["any", "g"], &["var"], &[]] {
            let p = pat(specs);
            let id = s.intern(p.clone());
            assert_eq!(s.is_ground(id), p.is_ground(), "{specs:?}");
        }
    }
}
