//! Property tests for the abstract-domain lattice: lub laws on randomly
//! generated patterns, and γ-soundness of lub with respect to coverage of
//! randomly generated concrete terms.

use absdom::{AbsLeaf, PNode, Pattern};
use proptest::prelude::*;
use prolog_syntax::{Interner, Term, VarId};

/// Generator for pattern shapes (built into a node arena afterwards).
#[derive(Clone, Debug)]
enum Shape {
    Leaf(u8),
    Int(i64),
    Nil,
    List(Box<Shape>),
    Struct(u8, Vec<Shape>),
    Cons(Box<Shape>, Box<Shape>),
}

fn shape() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        (0u8..7).prop_map(Shape::Leaf),
        (-5i64..5).prop_map(Shape::Int),
        Just(Shape::Nil),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|s| Shape::List(Box::new(s))),
            (0u8..3, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| Shape::Struct(f, args)),
            (inner.clone(), inner.clone())
                .prop_map(|(h, t)| Shape::Cons(Box::new(h), Box::new(t))),
        ]
    })
}

fn leaf_of(i: u8) -> AbsLeaf {
    AbsLeaf::ALL[i as usize % AbsLeaf::ALL.len()]
}

fn functor_symbol(i: u8, interner: &mut Interner) -> prolog_syntax::Symbol {
    interner.intern(match i % 3 {
        0 => "f",
        1 => "g",
        _ => "h",
    })
}

fn build(shape: &Shape, nodes: &mut Vec<PNode>, interner: &mut Interner) -> usize {
    let node = match shape {
        Shape::Leaf(i) => PNode::Leaf(leaf_of(*i)),
        Shape::Int(i) => PNode::Int(*i),
        Shape::Nil => PNode::Atom(absdom::nil_symbol()),
        Shape::List(e) => {
            let e = build(e, nodes, interner);
            PNode::List(e)
        }
        Shape::Struct(f, args) => {
            let sym = functor_symbol(*f, interner);
            let args = args.iter().map(|a| build(a, nodes, interner)).collect();
            PNode::Struct(sym, args)
        }
        Shape::Cons(h, t) => {
            let dot = interner.dot();
            let h = build(h, nodes, interner);
            let t = build(t, nodes, interner);
            PNode::Struct(dot, vec![h, t])
        }
    };
    nodes.push(node);
    nodes.len() - 1
}

fn pattern_of(shapes: &[Shape]) -> Pattern {
    let mut interner = Interner::new();
    let mut nodes = Vec::new();
    let roots = shapes
        .iter()
        .map(|s| build(s, &mut nodes, &mut interner))
        .collect();
    Pattern::new(nodes, roots)
}

/// Generator for small concrete terms (sharing one global interner layout).
#[derive(Clone, Debug)]
enum CShape {
    Var(u32),
    Int(i64),
    Atom(u8),
    Nil,
    Struct(u8, Vec<CShape>),
    ConsList(Vec<CShape>),
}

fn cshape() -> impl Strategy<Value = CShape> {
    let leaf = prop_oneof![
        (0u32..3).prop_map(CShape::Var),
        (-5i64..5).prop_map(CShape::Int),
        (0u8..3).prop_map(CShape::Atom),
        Just(CShape::Nil),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (0u8..3, prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(f, args)| CShape::Struct(f, args)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(CShape::ConsList),
        ]
    })
}

fn cterm(shape: &CShape, interner: &mut Interner) -> Term {
    match shape {
        CShape::Var(v) => Term::Var(VarId(*v)),
        CShape::Int(i) => Term::Int(*i),
        CShape::Atom(i) => Term::Atom(functor_symbol(*i, interner)),
        CShape::Nil => Term::Atom(interner.nil()),
        CShape::Struct(f, args) => {
            let sym = functor_symbol(*f, interner);
            let args = args.iter().map(|a| cterm(a, interner)).collect();
            Term::Struct(sym, args)
        }
        CShape::ConsList(items) => {
            let items: Vec<Term> = items.iter().map(|i| cterm(i, interner)).collect();
            Term::list(interner, items)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lub_commutative(a in prop::collection::vec(shape(), 1..3),
                       b in prop::collection::vec(shape(), 1..3)) {
        prop_assume!(a.len() == b.len());
        let (p, q) = (pattern_of(&a), pattern_of(&b));
        prop_assert_eq!(p.lub(&q), q.lub(&p));
    }

    #[test]
    fn lub_idempotent(a in prop::collection::vec(shape(), 1..3)) {
        let p = pattern_of(&a);
        prop_assert_eq!(p.lub(&p), p);
    }

    #[test]
    fn lub_associative(a in prop::collection::vec(shape(), 1..2),
                       b in prop::collection::vec(shape(), 1..2),
                       c in prop::collection::vec(shape(), 1..2)) {
        prop_assume!(a.len() == b.len() && b.len() == c.len());
        let (p, q, r) = (pattern_of(&a), pattern_of(&b), pattern_of(&c));
        prop_assert_eq!(p.lub(&q).lub(&r), p.lub(&q.lub(&r)));
    }

    #[test]
    fn canonicalization_stable(a in prop::collection::vec(shape(), 1..4)) {
        let p = pattern_of(&a);
        // Pattern::new canonicalizes; re-wrapping must be a fixpoint.
        let q = Pattern::new(p.nodes().to_vec(),
                             (0..p.arity()).map(|i| p.root(i)).collect());
        prop_assert_eq!(p, q);
    }

    #[test]
    fn lub_is_upper_bound_for_coverage(a in shape(), b in shape(),
                                       t in cshape()) {
        let p = pattern_of(std::slice::from_ref(&a));
        let q = pattern_of(std::slice::from_ref(&b));
        let mut interner = Interner::new();
        let term = cterm(&t, &mut interner);
        let j = p.lub(&q);
        if p.covers(std::slice::from_ref(&term)) || q.covers(std::slice::from_ref(&term)) {
            prop_assert!(j.covers(std::slice::from_ref(&term)),
                "lub {} does not cover a term covered by an operand", j);
        }
    }

    #[test]
    fn lub_never_panics_on_mixed_arity_roots(a in prop::collection::vec(shape(), 2..4)) {
        let p = pattern_of(&a);
        let q = pattern_of(&a);
        let _ = p.lub(&q);
    }
}
