//! Property tests for the abstract-domain lattice: lub laws on randomly
//! generated patterns, and γ-soundness of lub with respect to coverage of
//! randomly generated concrete terms. Shapes come from a deterministic
//! inline PRNG (the workspace builds offline, so no proptest).

use absdom::{AbsLeaf, PNode, Pattern};
use prolog_syntax::{Interner, Term, VarId};

/// xorshift64* — deterministic shape generator driver.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generator for pattern shapes (built into a node arena afterwards).
#[derive(Clone, Debug)]
enum Shape {
    Leaf(u8),
    Int(i64),
    Nil,
    List(Box<Shape>),
    Struct(u8, Vec<Shape>),
    Cons(Box<Shape>, Box<Shape>),
}

fn shape(rng: &mut Rng, depth: usize) -> Shape {
    // Compound shapes with probability 1/3 below the depth cap; the same
    // leaf mix as before (Leaf, Int, Nil).
    if depth > 0 && rng.below(3) == 0 {
        match rng.below(3) {
            0 => Shape::List(Box::new(shape(rng, depth - 1))),
            1 => {
                let f = rng.below(3) as u8;
                let n = 1 + rng.below(2) as usize;
                let args = (0..n).map(|_| shape(rng, depth - 1)).collect();
                Shape::Struct(f, args)
            }
            _ => Shape::Cons(
                Box::new(shape(rng, depth - 1)),
                Box::new(shape(rng, depth - 1)),
            ),
        }
    } else {
        match rng.below(3) {
            0 => Shape::Leaf(rng.below(7) as u8),
            1 => Shape::Int(rng.below(10) as i64 - 5),
            _ => Shape::Nil,
        }
    }
}

fn shape_vec(rng: &mut Rng, len: usize) -> Vec<Shape> {
    (0..len).map(|_| shape(rng, 3)).collect()
}

fn leaf_of(i: u8) -> AbsLeaf {
    AbsLeaf::ALL[i as usize % AbsLeaf::ALL.len()]
}

fn functor_symbol(i: u8, interner: &mut Interner) -> prolog_syntax::Symbol {
    interner.intern(match i % 3 {
        0 => "f",
        1 => "g",
        _ => "h",
    })
}

fn build(shape: &Shape, nodes: &mut Vec<PNode>, interner: &mut Interner) -> usize {
    let node = match shape {
        Shape::Leaf(i) => PNode::Leaf(leaf_of(*i)),
        Shape::Int(i) => PNode::Int(*i),
        Shape::Nil => PNode::Atom(absdom::nil_symbol()),
        Shape::List(e) => {
            let e = build(e, nodes, interner);
            PNode::List(e)
        }
        Shape::Struct(f, args) => {
            let sym = functor_symbol(*f, interner);
            let args = args.iter().map(|a| build(a, nodes, interner)).collect();
            PNode::Struct(sym, args)
        }
        Shape::Cons(h, t) => {
            let dot = interner.dot();
            let h = build(h, nodes, interner);
            let t = build(t, nodes, interner);
            PNode::Struct(dot, vec![h, t])
        }
    };
    nodes.push(node);
    nodes.len() - 1
}

fn pattern_of(shapes: &[Shape]) -> Pattern {
    let mut interner = Interner::new();
    let mut nodes = Vec::new();
    let roots = shapes
        .iter()
        .map(|s| build(s, &mut nodes, &mut interner))
        .collect();
    Pattern::new(nodes, roots)
}

/// Generator for small concrete terms (sharing one global interner layout).
#[derive(Clone, Debug)]
enum CShape {
    Var(u32),
    Int(i64),
    Atom(u8),
    Nil,
    Struct(u8, Vec<CShape>),
    ConsList(Vec<CShape>),
}

fn cshape(rng: &mut Rng, depth: usize) -> CShape {
    if depth > 0 && rng.below(3) == 0 {
        if rng.below(2) == 0 {
            let f = rng.below(3) as u8;
            let n = 1 + rng.below(2) as usize;
            let args = (0..n).map(|_| cshape(rng, depth - 1)).collect();
            CShape::Struct(f, args)
        } else {
            let n = rng.below(3) as usize;
            CShape::ConsList((0..n).map(|_| cshape(rng, depth - 1)).collect())
        }
    } else {
        match rng.below(4) {
            0 => CShape::Var(rng.below(3) as u32),
            1 => CShape::Int(rng.below(10) as i64 - 5),
            2 => CShape::Atom(rng.below(3) as u8),
            _ => CShape::Nil,
        }
    }
}

fn cterm(shape: &CShape, interner: &mut Interner) -> Term {
    match shape {
        CShape::Var(v) => Term::Var(VarId(*v)),
        CShape::Int(i) => Term::Int(*i),
        CShape::Atom(i) => Term::Atom(functor_symbol(*i, interner)),
        CShape::Nil => Term::Atom(interner.nil()),
        CShape::Struct(f, args) => {
            let sym = functor_symbol(*f, interner);
            let args = args.iter().map(|a| cterm(a, interner)).collect();
            Term::Struct(sym, args)
        }
        CShape::ConsList(items) => {
            let items: Vec<Term> = items.iter().map(|i| cterm(i, interner)).collect();
            Term::list(interner, items)
        }
    }
}

const CASES: u64 = 128;

#[test]
fn lub_commutative() {
    let mut rng = Rng::new(0xa11c_e001);
    for case in 0..CASES {
        let len = 1 + rng.below(2) as usize;
        let a = shape_vec(&mut rng, len);
        let b = shape_vec(&mut rng, len);
        let (p, q) = (pattern_of(&a), pattern_of(&b));
        assert_eq!(p.lub(&q), q.lub(&p), "case {case}");
    }
}

#[test]
fn lub_idempotent() {
    let mut rng = Rng::new(0xa11c_e002);
    for case in 0..CASES {
        let len = 1 + rng.below(2) as usize;
        let a = shape_vec(&mut rng, len);
        let p = pattern_of(&a);
        assert_eq!(p.lub(&p), p, "case {case}");
    }
}

#[test]
fn lub_associative() {
    let mut rng = Rng::new(0xa11c_e003);
    for case in 0..CASES {
        let a = shape_vec(&mut rng, 1);
        let b = shape_vec(&mut rng, 1);
        let c = shape_vec(&mut rng, 1);
        let (p, q, r) = (pattern_of(&a), pattern_of(&b), pattern_of(&c));
        assert_eq!(p.lub(&q).lub(&r), p.lub(&q.lub(&r)), "case {case}");
    }
}

#[test]
fn canonicalization_stable() {
    let mut rng = Rng::new(0xa11c_e004);
    for case in 0..CASES {
        let len = 1 + rng.below(3) as usize;
        let a = shape_vec(&mut rng, len);
        let p = pattern_of(&a);
        // Pattern::new canonicalizes; re-wrapping must be a fixpoint.
        let q = Pattern::new(
            p.nodes().to_vec(),
            (0..p.arity()).map(|i| p.root(i)).collect(),
        );
        assert_eq!(p, q, "case {case}");
    }
}

#[test]
fn lub_is_upper_bound_for_coverage() {
    let mut rng = Rng::new(0xa11c_e005);
    for case in 0..CASES {
        let a = shape(&mut rng, 3);
        let b = shape(&mut rng, 3);
        let t = cshape(&mut rng, 3);
        let p = pattern_of(std::slice::from_ref(&a));
        let q = pattern_of(std::slice::from_ref(&b));
        let mut interner = Interner::new();
        let term = cterm(&t, &mut interner);
        let j = p.lub(&q);
        if p.covers(std::slice::from_ref(&term)) || q.covers(std::slice::from_ref(&term)) {
            assert!(
                j.covers(std::slice::from_ref(&term)),
                "case {case}: lub {j} does not cover a term covered by an operand"
            );
        }
    }
}

#[test]
fn lub_never_panics_on_mixed_arity_roots() {
    let mut rng = Rng::new(0xa11c_e006);
    for _ in 0..CASES {
        let len = 2 + rng.below(2) as usize;
        let a = shape_vec(&mut rng, len);
        let p = pattern_of(&a);
        let q = pattern_of(&a);
        let _ = p.lub(&q);
    }
}
