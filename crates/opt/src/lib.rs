//! Analysis-driven WAM optimizations.
//!
//! The paper's opening argument (§1) is that "substantial optimizations
//! all depend on interprocedural information such as mode, type and
//! variable aliasing" — the analysis exists to feed an optimizing
//! compiler ([12, 13, 15, 18, 23] in its bibliography). This crate is
//! that downstream client, closing the loop:
//!
//! * [`OptReport`] classifies, from the extension table, every head
//!   `get_*` instruction of every analyzed predicate as **read-only**
//!   (the argument is always bound: unification specializes to matching,
//!   no trailing), **write-only** (always unbound: pure construction, no
//!   dispatch), or mixed — plus dead `switch_on_term` branches and
//!   predicates whose first-argument indexing is provably deterministic
//!   (no choice points).
//! * [`specialize`] applies the clause-level consequence: clauses whose
//!   head can never match any recorded calling pattern are removed, and
//!   predicates never called from the analyzed entry are dropped
//!   entirely; the result recompiles and runs *fewer instructions for
//!   the same answers* (tested).

#![warn(missing_docs)]

use absdom::{AbsLeaf, PNode, Pattern};
use awam_core::Analysis;
use prolog_syntax::{Program, Term};
use std::collections::HashMap;
use std::fmt;
use wam::{CompiledProgram, Instr, WamConst};

/// Classification of one head `get` instruction's argument register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgState {
    /// Always bound at every recorded call: read-mode specialization.
    ReadOnly,
    /// Always unbound: write-mode specialization.
    WriteOnly,
    /// Sometimes bound, sometimes not (or unknown).
    Mixed,
}

/// Optimization opportunities for one predicate.
#[derive(Clone, Debug, Default)]
pub struct PredOpt {
    /// `name/arity`.
    pub name: String,
    /// `get_*` instructions classified [`ArgState::ReadOnly`].
    pub read_only_gets: usize,
    /// `get_*` instructions classified [`ArgState::WriteOnly`].
    pub write_only_gets: usize,
    /// `get_*` instructions with mixed/unknown argument states.
    pub mixed_gets: usize,
    /// `get_constant` instructions whose success is decided statically
    /// (the calling pattern pins the argument to that very constant).
    pub redundant_const_checks: usize,
    /// Dead branches of the predicate's `switch_on_term`, if it has one.
    pub dead_switch_branches: usize,
    /// Whether first-argument indexing makes the predicate determinate
    /// (at most one clause candidate for every recorded calling pattern).
    pub determinate: bool,
}

/// The whole-program report.
#[derive(Clone, Debug, Default)]
pub struct OptReport {
    /// Per-predicate rows (analyzed predicates only).
    pub preds: Vec<PredOpt>,
}

impl OptReport {
    /// Derive the report from a compiled program and its analysis.
    pub fn build(compiled: &CompiledProgram, analysis: &Analysis) -> OptReport {
        let mut report = OptReport::default();
        for pa in &analysis.predicates {
            let pred = &compiled.predicates[pa.pred];
            let mut row = PredOpt {
                name: pa.name.clone(),
                ..PredOpt::default()
            };
            // Entry states per argument: the lub over calling patterns.
            let states: Vec<ArgState> = (0..pa.arity).map(|i| arg_state(&pa.entries, i)).collect();
            // Walk each clause's head section.
            for &entry in &pred.clause_entries {
                classify_head(compiled, entry, &states, &pa.entries, &mut row);
            }
            // Switch analysis.
            if let Some(Instr::SwitchOnTerm { .. }) = compiled.code.get(pred.entry) {
                row.dead_switch_branches = dead_branches(&pa.entries);
            }
            row.determinate = determinate(compiled, pred, &pa.entries);
            report.preds.push(row);
        }
        report
    }

    /// Sum across predicates: `(read_only, write_only, mixed)`.
    pub fn totals(&self) -> (usize, usize, usize) {
        self.preds.iter().fold((0, 0, 0), |(r, w, m), p| {
            (
                r + p.read_only_gets,
                w + p.write_only_gets,
                m + p.mixed_gets,
            )
        })
    }

    /// Fraction of `get` instructions that can be mode-specialized.
    pub fn specializable_fraction(&self) -> f64 {
        let (r, w, m) = self.totals();
        let total = r + w + m;
        if total == 0 {
            return 0.0;
        }
        (r + w) as f64 / total as f64
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>5} {:>6} {:>6} {:>7} {:>6} {:>6}",
            "predicate", "read", "write", "mixed", "rconst", "deadsw", "det"
        )?;
        for p in &self.preds {
            writeln!(
                f,
                "{:<16} {:>5} {:>6} {:>6} {:>7} {:>6} {:>6}",
                p.name,
                p.read_only_gets,
                p.write_only_gets,
                p.mixed_gets,
                p.redundant_const_checks,
                p.dead_switch_branches,
                if p.determinate { "yes" } else { "" }
            )?;
        }
        let (r, w, m) = self.totals();
        writeln!(
            f,
            "total: {r} read-only, {w} write-only, {m} mixed — {:.0}% of head gets specialize",
            100.0 * self.specializable_fraction()
        )
    }
}

fn arg_state(entries: &[(Pattern, Option<Pattern>)], i: usize) -> ArgState {
    let mut all_bound = true;
    let mut all_free = true;
    for (cp, _) in entries {
        match cp.leaf_approx(cp.root(i)) {
            AbsLeaf::Var => all_bound = false,
            AbsLeaf::Any => {
                all_bound = false;
                all_free = false;
            }
            _ => all_free = false,
        }
    }
    if all_bound && !entries.is_empty() {
        ArgState::ReadOnly
    } else if all_free && !entries.is_empty() {
        ArgState::WriteOnly
    } else {
        ArgState::Mixed
    }
}

fn classify_head(
    compiled: &CompiledProgram,
    entry: usize,
    states: &[ArgState],
    entries: &[(Pattern, Option<Pattern>)],
    row: &mut PredOpt,
) {
    // Walk constituents, so fused superinstructions classify the same
    // as the plain opcodes they pack.
    'head: for instr in &compiled.code[entry..] {
        for constituent in instr.expand() {
            match &constituent {
                Instr::GetConstant(_, a) | Instr::GetList(a) | Instr::GetStructure(_, a)
                    if (*a as usize) < states.len() =>
                {
                    match states[*a as usize] {
                        ArgState::ReadOnly => row.read_only_gets += 1,
                        ArgState::WriteOnly => row.write_only_gets += 1,
                        ArgState::Mixed => row.mixed_gets += 1,
                    }
                    if let Instr::GetConstant(c, a) = &constituent {
                        if constant_pinned(entries, *a as usize, *c) {
                            row.redundant_const_checks += 1;
                        }
                    }
                }
                Instr::GetVariable(..) | Instr::GetValue(..) => {}
                Instr::UnifyVariable(_)
                | Instr::UnifyValue(_)
                | Instr::UnifyConstant(_)
                | Instr::UnifyVoid(_)
                | Instr::Allocate(_)
                | Instr::GetLevel(_)
                | Instr::GetConstant(..)
                | Instr::GetList(_)
                | Instr::GetStructure(..) => {}
                // First body instruction ends the head section.
                _ => break 'head,
            }
        }
    }
}

/// All calling patterns pin argument `a` to exactly the constant `c`.
fn constant_pinned(entries: &[(Pattern, Option<Pattern>)], a: usize, c: WamConst) -> bool {
    !entries.is_empty()
        && entries
            .iter()
            .all(|(cp, _)| match (cp.node(cp.root(a)), c) {
                (PNode::Atom(x), WamConst::Atom(y)) => *x == y,
                (PNode::Int(x), WamConst::Int(y)) => *x == y,
                _ => false,
            })
}

/// Dead `switch_on_term` branches: count dispatch targets no recorded
/// calling pattern can reach through its first argument.
fn dead_branches(entries: &[(Pattern, Option<Pattern>)]) -> usize {
    if entries.is_empty() {
        return 0;
    }
    let mut var_live = false;
    let mut con_live = false;
    let mut lis_live = false;
    let mut str_live = false;
    for (cp, _) in entries {
        if cp.arity() == 0 {
            return 0;
        }
        match cp.node(cp.root(0)) {
            PNode::Leaf(AbsLeaf::Var) => var_live = true,
            PNode::Leaf(AbsLeaf::Any) => return 0, // everything live
            PNode::Leaf(AbsLeaf::NonVar) => {
                con_live = true;
                lis_live = true;
                str_live = true;
            }
            PNode::Leaf(AbsLeaf::Ground) => {
                con_live = true;
                lis_live = true;
                str_live = true;
            }
            PNode::Leaf(AbsLeaf::Const) => {
                con_live = true;
            }
            PNode::Leaf(AbsLeaf::Atom | AbsLeaf::Integer) | PNode::Atom(_) | PNode::Int(_) => {
                con_live = true;
            }
            PNode::List(_) => {
                con_live = true; // [] is a constant
                lis_live = true;
            }
            PNode::Struct(f, args) => {
                if absdom::is_dot_symbol(*f) && args.len() == 2 {
                    lis_live = true;
                } else {
                    str_live = true;
                }
            }
        }
    }
    [var_live, con_live, lis_live, str_live]
        .iter()
        .filter(|live| !**live)
        .count()
}

/// Is clause selection deterministic for every recorded calling pattern?
/// True when the first argument is always a specific constant or functor
/// and the predicate's second-level dispatch maps it to at most one
/// clause.
fn determinate(
    compiled: &CompiledProgram,
    pred: &wam::PredEntry,
    entries: &[(Pattern, Option<Pattern>)],
) -> bool {
    if pred.clause_entries.len() <= 1 {
        return true;
    }
    let Some(Instr::SwitchOnTerm { con, lis, str_, .. }) = compiled.code.get(pred.entry) else {
        return false;
    };
    if entries.is_empty() {
        return false;
    }
    entries.iter().all(|(cp, _)| {
        if cp.arity() == 0 {
            return false;
        }
        let target = match cp.node(cp.root(0)) {
            PNode::Atom(_) | PNode::Int(_) => *con,
            PNode::Struct(f, args) if absdom::is_dot_symbol(*f) && args.len() == 2 => *lis,
            PNode::Struct(..) => *str_,
            PNode::List(_) => return false, // [] or cons: two targets
            PNode::Leaf(_) => return false,
        };
        branch_is_deterministic(compiled, target)
    })
}

fn branch_is_deterministic(compiled: &CompiledProgram, target: usize) -> bool {
    match compiled.code.get(target) {
        Some(Instr::Fail) => true,
        Some(Instr::Try(_) | Instr::TryMeElse(_)) => false,
        // Second-level tables: every bucket must itself be deterministic.
        Some(Instr::SwitchOnConstant(table)) => table
            .iter()
            .all(|(_, t)| branch_is_deterministic(compiled, *t)),
        Some(Instr::SwitchOnStructure(table)) => table
            .iter()
            .all(|(_, t)| branch_is_deterministic(compiled, *t)),
        // A direct clause-body entry.
        Some(_) => true,
        None => false,
    }
}

// ---------------------------------------------------------------------
// Source-level specialization
// ---------------------------------------------------------------------

/// Result of [`specialize`].
#[derive(Debug)]
pub struct Specialized {
    /// The residual program.
    pub program: Program,
    /// Clauses removed because their head cannot match any recorded
    /// calling pattern of their predicate.
    pub dead_clauses: usize,
    /// Predicates removed because the analysis never reaches them.
    pub dead_preds: usize,
}

/// Remove clauses and predicates the analysis proves unreachable from
/// the analyzed entry. Sound *for that entry*: the residual program
/// computes the same answers for goals covered by the analysis.
pub fn specialize(program: &Program, analysis: &Analysis) -> Specialized {
    // Map analyzed predicate names to their calling patterns.
    let mut patterns: HashMap<String, Vec<Pattern>> = HashMap::new();
    for pa in &analysis.predicates {
        patterns.insert(
            pa.name.clone(),
            pa.entries.iter().map(|(c, _)| c.clone()).collect(),
        );
    }
    let mut out = Program {
        interner: program.interner.clone(),
        clauses: Vec::new(),
        directives: program.directives.clone(),
    };
    let mut dead_clauses = 0;
    let mut seen_preds: std::collections::HashSet<String> = Default::default();
    let mut dead_preds_set: std::collections::HashSet<String> = Default::default();
    for clause in &program.clauses {
        let key = clause.pred_key().display(&program.interner);
        seen_preds.insert(key.clone());
        let Some(cps) = patterns.get(&key) else {
            dead_preds_set.insert(key);
            continue; // predicate never called
        };
        let live = cps.iter().any(|cp| head_may_match(clause, cp));
        if live {
            out.clauses.push(clause.clone());
        } else {
            dead_clauses += 1;
        }
    }
    Specialized {
        program: out,
        dead_clauses,
        dead_preds: dead_preds_set.len(),
    }
}

/// Cheap refutation: can the clause head possibly match the calling
/// pattern? (Compares top-level argument shapes only; `true` means
/// "maybe".)
fn head_may_match(clause: &prolog_syntax::Clause, cp: &Pattern) -> bool {
    let args: &[Term] = match &clause.head {
        Term::Struct(_, args) => args,
        _ => return true,
    };
    if args.len() != cp.arity() {
        return false;
    }
    args.iter().enumerate().all(|(i, arg)| {
        let node = cp.node(cp.root(i));
        match (arg, node) {
            (Term::Var(_), _) => true,
            (_, PNode::Leaf(AbsLeaf::Var)) => true, // a free var matches anything
            (Term::Atom(a), PNode::Atom(b)) => a == b,
            (Term::Atom(_), PNode::Int(_)) => false,
            (Term::Atom(a), PNode::List(_)) => *a == absdom::nil_symbol(),
            (Term::Atom(_), PNode::Struct(..)) => false,
            (Term::Atom(_), PNode::Leaf(l)) => l.admits_atom(),
            (Term::Int(i), PNode::Int(j)) => i == j,
            (Term::Int(_), PNode::Atom(_) | PNode::List(_) | PNode::Struct(..)) => false,
            (Term::Int(_), PNode::Leaf(l)) => l.admits_integer(),
            (Term::Struct(f, sub), PNode::Struct(g, nodes)) => f == g && sub.len() == nodes.len(),
            (Term::Struct(f, sub), PNode::List(_)) => absdom::is_dot_symbol(*f) && sub.len() == 2,
            (Term::Struct(..), PNode::Atom(_) | PNode::Int(_)) => false,
            (Term::Struct(f, sub), PNode::Leaf(l)) => {
                if absdom::is_dot_symbol(*f) && sub.len() == 2 {
                    l.admits_list()
                } else {
                    l.admits_struct()
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awam_core::Analyzer;
    use prolog_syntax::parse_program;

    fn analyze(src: &str, pred: &str, specs: &[&str]) -> (CompiledProgram, Analysis, Program) {
        let program = parse_program(src).unwrap();
        let compiled = wam::compile_program(&program).unwrap();
        let analyzer = Analyzer::from_compiled(compiled.clone());
        let analysis = analyzer.analyze_query(pred, specs).unwrap();
        (compiled, analysis, program)
    }

    #[test]
    fn read_only_classification() {
        let src = "
            len([], 0).
            len([_|T], N) :- len(T, M), N is M + 1.
        ";
        let (compiled, analysis, _) = analyze(src, "len", &["glist", "var"]);
        let report = OptReport::build(&compiled, &analysis);
        let len = report.preds.iter().find(|p| p.name == "len/2").unwrap();
        // A1 is always a (bound) list → the get_constant/get_list on it
        // are read-only; A2 is always unbound at the call.
        assert!(len.read_only_gets >= 2, "{len:?}");
        assert!(len.write_only_gets >= 1, "{len:?}");
        assert_eq!(len.mixed_gets, 0, "{len:?}");
    }

    #[test]
    fn dead_switch_branches_counted() {
        let src = "
            kind([], empty).
            kind([_|_], cons).
            kind(other, atom).
        ";
        // Called only with lists: the struct branch is dead (list+const
        // stay live because [] is a constant).
        let (compiled, analysis, _) = analyze(src, "kind", &["glist", "var"]);
        let report = OptReport::build(&compiled, &analysis);
        let kind = report.preds.iter().find(|p| p.name == "kind/2").unwrap();
        assert!(kind.dead_switch_branches >= 1, "{kind:?}");
    }

    #[test]
    fn determinate_dispatch_detected() {
        let src = "
            color(red, warm).
            color(blue, cold).
            color(green, cool).
            pick(X) :- color(red, X).
        ";
        let (compiled, analysis, _) = analyze(src, "pick", &["var"]);
        let report = OptReport::build(&compiled, &analysis);
        let color = report.preds.iter().find(|p| p.name == "color/2").unwrap();
        assert!(color.determinate, "{color:?}");
    }

    #[test]
    fn redundant_constant_checks() {
        let src = "
            greet(hello, world).
            main(X) :- greet(hello, X).
        ";
        let (compiled, analysis, _) = analyze(src, "main", &["var"]);
        let report = OptReport::build(&compiled, &analysis);
        let greet = report.preds.iter().find(|p| p.name == "greet/2").unwrap();
        assert!(greet.redundant_const_checks >= 1, "{greet:?}");
    }

    #[test]
    fn specialization_removes_dead_clauses_and_preds() {
        let src = "
            dispatch(1, int_one).
            dispatch(foo, atom_foo).
            dispatch([], empty_list).
            unused(x).
            main(X) :- dispatch(1, X).
        ";
        let (_, analysis, program) = analyze(src, "main", &["var"]);
        let spec = specialize(&program, &analysis);
        assert_eq!(spec.dead_preds, 1, "unused/1 dropped");
        assert!(
            spec.dead_clauses >= 2,
            "atom/list clauses of dispatch are dead: {spec:?}"
        );
        // The residual program still computes the same answer.
        let compiled = wam::compile_program(&spec.program).unwrap();
        let mut machine = wam_machine::Machine::new(&compiled);
        let solution = machine.query_str("main(X)").unwrap().unwrap();
        assert_eq!(solution.binding_str("X").unwrap(), "int_one");
    }

    #[test]
    fn specialization_preserves_benchmark_answers() {
        let src = "
            nrev([], []).
            nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
            app([], L, L).
            app([H|T], L, [H|R]) :- app(T, L, R).
            dead_helper(1).
        ";
        let (_, analysis, program) = analyze(src, "nrev", &["glist", "var"]);
        let spec = specialize(&program, &analysis);
        assert_eq!(spec.dead_preds, 1);
        assert_eq!(spec.dead_clauses, 0, "all nrev/app clauses reachable");
        let compiled = wam::compile_program(&spec.program).unwrap();
        let mut machine = wam_machine::Machine::new(&compiled);
        let s = machine.query_str("nrev([1, 2, 3], X)").unwrap().unwrap();
        assert_eq!(s.binding_str("X").unwrap(), "[3, 2, 1]");
    }
}
