//! Ablation C: domain precision versus analysis time — the trade-off the
//! paper's §7 discusses ("it becomes a design tradeoff between time and
//! precision of the analysis"). The full domain is compared against
//! versions with aliasing, list types, or structure types disabled, and
//! against the coarse leaves-only domain.

use absdom::{DomainConfig, Pattern};
use awam_core::Analyzer;

const CONFIGS: &[(&str, DomainConfig)] = &[
    ("full", DomainConfig::FULL),
    (
        "-alias",
        DomainConfig {
            aliasing: false,
            list_types: true,
            struct_types: true,
        },
    ),
    (
        "-lists",
        DomainConfig {
            aliasing: true,
            list_types: false,
            struct_types: true,
        },
    ),
    (
        "-structs",
        DomainConfig {
            aliasing: true,
            list_types: true,
            struct_types: false,
        },
    ),
    (
        "leaves",
        DomainConfig {
            aliasing: false,
            list_types: false,
            struct_types: false,
        },
    ),
];

fn main() {
    println!("Ablation C — domain precision vs. time (paper §7)\n");
    println!(
        "{:<10} {:>9} {:>10} {:>7} {:>8} {:>9} {:>10}",
        "Benchmark", "config", "time(us)", "Exec", "entries", "ground%", "list-typed"
    );
    println!("{}", "-".repeat(70));
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let entry = Pattern::from_spec(b.entry_specs).expect("entry");
        for (name, config) in CONFIGS {
            let analyzer = Analyzer::builder()
                .domain_config(*config)
                .compile(&program)
                .expect("compile");
            let analysis = match analyzer.analyze(b.entry, &entry) {
                Ok(a) => a,
                Err(e) => {
                    println!("{:<10} {:>9} {e}", b.name, name);
                    continue;
                }
            };
            // Precision metrics over all success patterns: proportion of
            // argument positions proven ground, and list-typed positions.
            let mut positions = 0usize;
            let mut ground = 0usize;
            let mut listy = 0usize;
            let mut entries = 0usize;
            for pred in &analysis.predicates {
                entries += pred.entries.len();
                for (_, success) in &pred.entries {
                    let Some(s) = success else { continue };
                    for i in 0..s.arity() {
                        positions += 1;
                        if s.node_is_ground(s.root(i)) {
                            ground += 1;
                        }
                        if matches!(s.node(s.root(i)), absdom::PNode::List(_)) {
                            listy += 1;
                        }
                    }
                }
            }
            let us = awam_bench::time_us(
                || {
                    let _ = analyzer.analyze(b.entry, &entry).expect("analysis");
                },
                15,
            );
            let pct = if positions == 0 {
                0.0
            } else {
                100.0 * ground as f64 / positions as f64
            };
            println!(
                "{:<10} {:>9} {:>10.1} {:>7} {:>8} {:>8.0}% {:>10}",
                b.name, name, us, analysis.instructions_executed, entries, pct, listy
            );
        }
        println!();
    }
}
