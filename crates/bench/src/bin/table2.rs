//! Regenerate the paper's Table 2: speed ratios across platforms
//! (simulated via the paper's published platform indices).

fn main() {
    let rows = awam_bench::table1_rows();
    print!("{}", awam_bench::render_table2(&rows));
}
