//! Ablation A: analysis time and precision versus the term-depth
//! restriction k (the paper fixes k = 4, following Taylor's analyzer).

use absdom::Pattern;
use awam_core::{Analyzer, EtImpl};

fn main() {
    println!("Ablation A — term-depth restriction k (paper: k = 4)\n");
    println!(
        "{:<10} {:>3} {:>10} {:>8} {:>6} {:>8}",
        "Benchmark", "k", "time(us)", "Exec", "Iter", "entries"
    );
    println!("{}", "-".repeat(52));
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        for k in [1, 2, 3, 4, 6, 8] {
            let analyzer = Analyzer::builder()
                .depth(k)
                .et_impl(EtImpl::Linear)
                .compile(&program)
                .expect("compile");
            let entry = Pattern::from_spec(b.entry_specs).expect("entry");
            let analysis = match analyzer.analyze(b.entry, &entry) {
                Ok(a) => a,
                Err(e) => {
                    println!("{:<10} {:>3} {e}", b.name, k);
                    continue;
                }
            };
            let entries: usize = analysis.predicates.iter().map(|p| p.entries.len()).sum();
            let us = awam_bench::time_us(
                || {
                    let _ = analyzer.analyze(b.entry, &entry).expect("analysis");
                },
                20,
            );
            println!(
                "{:<10} {:>3} {:>10.1} {:>8} {:>6} {:>8}",
                b.name, k, us, analysis.instructions_executed, analysis.iterations, entries
            );
        }
        println!();
    }
}
