//! Bench-regression guard: compare a fresh Table 1 run against the
//! committed `BENCH_table1.json` and fail when the compiled-analyzer
//! geomean regresses beyond tolerance.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin bench_guard -- \
//!     [--baseline BENCH_table1.json] [--tolerance 0.25] [--advisory]
//! ```
//!
//! The check is one-sided: only a *slowdown* of the fresh geomean
//! relative to the committed one fails. Per-benchmark numbers are
//! printed for context but not gated — single-benchmark jitter on a
//! shared CI box is too noisy to block on; the geomean is the contract.
//!
//! Exit status: 0 when within tolerance, 1 on regression, 2 on a
//! missing or malformed baseline file. With `--advisory` a missing
//! baseline is *not* an error (exit 0 with an explanatory note):
//! that is the right mode for checkouts that have not committed a
//! baseline yet, where "no baseline" means "nothing to guard", not
//! "the guard is broken". A malformed (present but unparseable)
//! baseline still exits 2 even in advisory mode — a corrupt committed
//! file is always worth failing loudly over.

use awam_obs::Json;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn float_field(row: &Json, key: &str) -> Option<f64> {
    match row.get(key)? {
        Json::Float(f) => Some(*f),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Exit 2 with a usage message — malformed invocations and corrupt
/// baselines are hard failures in every mode.
fn usage_error(message: &str) -> ! {
    eprintln!("bench_guard: {message}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = "BENCH_table1.json".to_owned();
    let mut tolerance = 0.25f64;
    let mut advisory = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                let Some(path) = it.next() else {
                    usage_error("--baseline needs a path");
                };
                baseline_path = path.clone();
            }
            "--tolerance" => {
                let Some(raw) = it.next() else {
                    usage_error("--tolerance needs a fraction, e.g. 0.25");
                };
                let Ok(parsed) = raw.parse() else {
                    usage_error(&format!("--tolerance needs a fraction, got `{raw}`"));
                };
                tolerance = parsed;
            }
            "--advisory" => advisory = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "bench_guard: no committed baseline at {baseline_path} — nothing to compare \
                 against.\nbench_guard: create one with `cargo run -p awam-bench --release \
                 --bin table1 -- --json {baseline_path}` and commit it."
            );
            if advisory {
                eprintln!("bench_guard: advisory mode, treating the missing baseline as a skip");
                return;
            }
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("bench_guard: cannot read {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_guard: {baseline_path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    };
    let committed: Vec<(String, f64)> = doc
        .as_arr()
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| {
            Some((
                row.get("name")?.as_str()?.to_owned(),
                float_field(row, "compiled_us")?,
            ))
        })
        .collect();
    if committed.is_empty() {
        eprintln!("bench_guard: no rows with compiled_us in {baseline_path}");
        std::process::exit(2);
    }

    eprintln!(
        "bench_guard: fresh Table 1 run vs {} committed rows (tolerance {:.0}%)",
        committed.len(),
        tolerance * 100.0
    );
    let fresh = awam_bench::table1_rows();

    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "benchmark", "committed_us", "fresh_us", "ratio"
    );
    let mut committed_times = Vec::new();
    let mut fresh_times = Vec::new();
    for (name, committed_us) in &committed {
        let Some(row) = fresh.iter().find(|r| r.name == name) else {
            eprintln!("bench_guard: committed benchmark {name} missing from fresh run");
            std::process::exit(2);
        };
        committed_times.push(*committed_us);
        fresh_times.push(row.compiled_us);
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>8.2}",
            name,
            committed_us,
            row.compiled_us,
            row.compiled_us / committed_us
        );
    }

    let committed_gm = geomean(&committed_times);
    let fresh_gm = geomean(&fresh_times);
    let ratio = fresh_gm / committed_gm;
    println!(
        "{:<12} {:>14.1} {:>14.1} {:>8.2}",
        "geomean", committed_gm, fresh_gm, ratio
    );

    if ratio > 1.0 + tolerance {
        eprintln!(
            "bench_guard: REGRESSION — fresh geomean {:.1} us is {:.0}% above committed {:.1} us \
             (tolerance {:.0}%)",
            fresh_gm,
            (ratio - 1.0) * 100.0,
            committed_gm,
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "bench_guard: ok — fresh geomean {:.1} us vs committed {:.1} us ({:+.0}%)",
        fresh_gm,
        committed_gm,
        (ratio - 1.0) * 100.0
    );
}
