//! Bench-regression guard: compare a fresh run against a committed
//! baseline and fail when it regresses beyond tolerance.
//!
//! Three gates share the binary:
//!
//! * **Table 1** (default): fresh analysis times vs
//!   `BENCH_table1.json`; only a slowdown of the compiled-analyzer
//!   *geomean* fails — per-benchmark jitter on a shared CI box is too
//!   noisy to block on.
//! * **Serve** (`--serve`): a fresh `loadgen` run (same seed, corpus,
//!   client count, and pipeline depth as the committed
//!   `BENCH_serve.json`) vs the committed `throughput_qps` and
//!   `latency_us.p99`. Serving numbers wobble even more than analysis
//!   times (TCP, scheduler, whatever else the box is doing), so CI
//!   runs this gate with `--advisory`: regressions are reported loudly
//!   but do not fail the build.
//! * **Incremental** (`--incremental`): a fresh incremental-suite run
//!   vs the committed `BENCH_incremental.json` — the headline
//!   "< 25% of cold fixpoint iterations" claim plus per-benchmark
//!   iteration-ratio drift. Counter-based, so deterministic; wall
//!   times are printed but never gated on.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin bench_guard -- \
//!     [--baseline BENCH_table1.json] [--tolerance 0.25] [--advisory]
//! cargo run -p awam-bench --release --bin bench_guard -- \
//!     --serve [--baseline BENCH_serve.json] [--tolerance 0.4] [--advisory]
//! cargo run -p awam-bench --release --bin bench_guard -- \
//!     --incremental [--baseline BENCH_incremental.json] [--tolerance 0.25] [--advisory]
//! ```
//!
//! Exit status: 0 when within tolerance, 1 on regression, 2 on a
//! missing or malformed baseline file. With `--advisory` a missing
//! baseline is *not* an error (exit 0 with an explanatory note) and a
//! regression is a warning: that is the right mode for checkouts that
//! have not committed a baseline yet and for gates whose metric is
//! inherently noisy. A malformed (present but unparseable) baseline
//! still exits 2 even in advisory mode — a corrupt committed file is
//! always worth failing loudly over.

use awam_obs::Json;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn float_field(row: &Json, key: &str) -> Option<f64> {
    match row.get(key)? {
        Json::Float(f) => Some(*f),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Exit 2 with a usage message — malformed invocations and corrupt
/// baselines are hard failures in every mode.
fn usage_error(message: &str) -> ! {
    eprintln!("bench_guard: {message}");
    std::process::exit(2);
}

/// Load and parse a committed baseline file, honoring the shared
/// missing/malformed policy. `Ok(None)` means "advisory skip".
fn load_baseline(baseline_path: &str, advisory: bool, create_hint: &str) -> Option<Json> {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "bench_guard: no committed baseline at {baseline_path} — nothing to compare \
                 against.\nbench_guard: create one with `{create_hint}` and commit it."
            );
            if advisory {
                eprintln!("bench_guard: advisory mode, treating the missing baseline as a skip");
                return None;
            }
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("bench_guard: cannot read {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    match Json::parse(&text) {
        Ok(d) => Some(d),
        Err(e) => {
            eprintln!("bench_guard: {baseline_path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

/// The serve gate: replay the committed benchmark's exact traffic shape
/// against a fresh in-process daemon and compare throughput and tail
/// latency. One-sided like the Table 1 gate — only lost throughput or
/// grown p99 counts as a regression.
fn serve_gate(baseline_path: &str, tolerance: f64, advisory: bool) {
    let Some(doc) = load_baseline(
        baseline_path,
        advisory,
        &format!("cargo run --release -- loadgen --out {baseline_path}"),
    ) else {
        return;
    };
    let int_field = |key: &str| -> Option<i64> { doc.get(key).and_then(Json::as_i64) };
    let (Some(seed), Some(programs), Some(clients), Some(tenants), Some(queries)) = (
        int_field("seed"),
        int_field("programs"),
        int_field("clients"),
        int_field("tenants"),
        int_field("queries_per_client"),
    ) else {
        eprintln!("bench_guard: {baseline_path} is missing the traffic-shape fields");
        std::process::exit(2);
    };
    // Baselines from before pipelining default to the stop-and-wait
    // driver they were recorded with.
    let depth = int_field("pipeline_depth").unwrap_or(1);
    let (Some(committed_qps), Some(committed_p99)) = (
        doc.get("throughput_qps").and_then(Json::as_f64),
        doc.get("latency_us")
            .and_then(|l| l.get("p99"))
            .and_then(Json::as_f64),
    ) else {
        eprintln!("bench_guard: {baseline_path} is missing throughput_qps / latency_us.p99");
        std::process::exit(2);
    };

    eprintln!(
        "bench_guard: fresh loadgen run (seed {seed}, {programs} programs, {clients} clients, \
         {tenants} tenants, {queries} queries/client, depth {depth}) vs {baseline_path} \
         (tolerance {:.0}%)",
        tolerance * 100.0
    );
    let config = awam_serve::loadgen::LoadgenConfig {
        addr: None,
        programs: programs as usize,
        clients: clients as usize,
        queries: queries as usize,
        tenants: tenants as usize,
        seed: seed as u64,
        pipeline_depth: depth as usize,
    };
    let fresh = match awam_serve::loadgen::run_loadgen(&config) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_guard: fresh loadgen run failed: {e}");
            std::process::exit(2);
        }
    };
    let (Some(fresh_qps), Some(fresh_p99)) = (
        fresh.get("throughput_qps").and_then(Json::as_f64),
        fresh
            .get("latency_us")
            .and_then(|l| l.get("p99"))
            .and_then(Json::as_f64),
    ) else {
        eprintln!("bench_guard: fresh loadgen summary is missing its metrics");
        std::process::exit(2);
    };

    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "metric", "committed", "fresh", "ratio"
    );
    println!(
        "{:<16} {:>14.0} {:>14.0} {:>8.2}",
        "throughput_qps",
        committed_qps,
        fresh_qps,
        fresh_qps / committed_qps
    );
    println!(
        "{:<16} {:>14.0} {:>14.0} {:>8.2}",
        "p99_us",
        committed_p99,
        fresh_p99,
        fresh_p99 / committed_p99
    );

    let mut regressions = Vec::new();
    if fresh_qps < committed_qps * (1.0 - tolerance) {
        regressions.push(format!(
            "throughput {fresh_qps:.0} q/s is {:.0}% below committed {committed_qps:.0} q/s",
            (1.0 - fresh_qps / committed_qps) * 100.0
        ));
    }
    if committed_p99 > 0.0 && fresh_p99 > committed_p99 * (1.0 + tolerance) {
        regressions.push(format!(
            "p99 {fresh_p99:.0} us is {:.0}% above committed {committed_p99:.0} us",
            (fresh_p99 / committed_p99 - 1.0) * 100.0
        ));
    }
    if regressions.is_empty() {
        eprintln!(
            "bench_guard: ok — serve throughput {fresh_qps:.0} q/s ({:+.0}%), p99 {fresh_p99:.0} us",
            (fresh_qps / committed_qps - 1.0) * 100.0
        );
        return;
    }
    for regression in &regressions {
        eprintln!(
            "bench_guard: SERVE REGRESSION — {regression} (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    if advisory {
        eprintln!("bench_guard: advisory mode, reporting without failing the build");
    } else {
        std::process::exit(1);
    }
}

/// The incremental gate: re-run the incremental suite fresh and check
/// two things against the committed `BENCH_incremental.json`:
///
/// * the **headline claim** — the seeded repair re-runs < 25% of the
///   cold fixpoint iterations on every [`awam_bench::INCREMENTAL_HEADLINE`]
///   benchmark (this is the PR's acceptance bar, checked on the fresh
///   run, not the committed file);
/// * **no ratio regression** — no suite benchmark's fresh iteration
///   ratio grew past the committed one by more than the tolerance.
///
/// Both metrics are exploration *counters*, deterministic modulo
/// analyzer changes; wall times are printed for context but never
/// gated on (they are dominated by parse + compile on programs this
/// small).
fn incremental_gate(baseline_path: &str, tolerance: f64, advisory: bool) {
    let Some(doc) = load_baseline(
        baseline_path,
        advisory,
        &format!(
            "cargo run -p awam-bench --release --bin bench_incremental -- --json {baseline_path}"
        ),
    ) else {
        return;
    };
    let Json::Arr(committed) = &doc else {
        eprintln!("bench_guard: {baseline_path} is not a JSON array of rows");
        std::process::exit(2);
    };
    eprintln!(
        "bench_guard: fresh incremental-suite run vs {baseline_path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    let fresh = awam_bench::incremental_rows();
    println!(
        "{:<10} {:<14} {:>12} {:>10} {:>8} {:>8}",
        "bench", "leaf", "committed%", "fresh%", "exec%", "time%"
    );
    let mut regressions = Vec::new();
    for r in &fresh {
        let committed_ratio = committed
            .iter()
            .find(|row| {
                row.get("name").and_then(Json::as_str) == Some(r.name)
            })
            .and_then(|row| float_field(row, "iter_ratio"));
        println!(
            "{:<10} {:<14} {:>11.1}% {:>9.1}% {:>7.1}% {:>7.1}%",
            r.name,
            r.leaf,
            committed_ratio.map_or(f64::NAN, |c| c * 100.0),
            r.iter_ratio * 100.0,
            r.exec_ratio * 100.0,
            r.time_ratio * 100.0,
        );
        if awam_bench::INCREMENTAL_HEADLINE.contains(&r.name) && r.iter_ratio >= 0.25 {
            regressions.push(format!(
                "{}: repair ran {:.1}% of the cold fixpoint iterations — the headline \
                 < 25% claim no longer holds",
                r.name,
                r.iter_ratio * 100.0
            ));
        }
        match committed_ratio {
            Some(c) if r.iter_ratio > c * (1.0 + tolerance) => {
                regressions.push(format!(
                    "{}: iteration ratio {:.1}% is above committed {:.1}%",
                    r.name,
                    r.iter_ratio * 100.0,
                    c * 100.0
                ));
            }
            Some(_) => {}
            None => {
                regressions.push(format!(
                    "{}: no committed row in {baseline_path} — regenerate the baseline",
                    r.name
                ));
            }
        }
    }
    if regressions.is_empty() {
        eprintln!(
            "bench_guard: ok — incremental repair within tolerance on all {} benchmarks",
            fresh.len()
        );
        return;
    }
    for regression in &regressions {
        eprintln!("bench_guard: INCREMENTAL REGRESSION — {regression}");
    }
    if advisory {
        eprintln!("bench_guard: advisory mode, reporting without failing the build");
    } else {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut tolerance: Option<f64> = None;
    let mut advisory = false;
    let mut serve = false;
    let mut incremental = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                let Some(path) = it.next() else {
                    usage_error("--baseline needs a path");
                };
                baseline_path = Some(path.clone());
            }
            "--tolerance" => {
                let Some(raw) = it.next() else {
                    usage_error("--tolerance needs a fraction, e.g. 0.25");
                };
                let Ok(parsed) = raw.parse() else {
                    usage_error(&format!("--tolerance needs a fraction, got `{raw}`"));
                };
                tolerance = Some(parsed);
            }
            "--advisory" => advisory = true,
            "--serve" => serve = true,
            "--incremental" => incremental = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    if incremental {
        incremental_gate(
            &baseline_path.unwrap_or_else(|| "BENCH_incremental.json".to_owned()),
            tolerance.unwrap_or(0.25),
            advisory,
        );
        return;
    }
    if serve {
        // Tail latency on a shared box is noisier than analysis time;
        // the serve gate defaults looser.
        serve_gate(
            &baseline_path.unwrap_or_else(|| "BENCH_serve.json".to_owned()),
            tolerance.unwrap_or(0.4),
            advisory,
        );
        return;
    }
    let baseline_path = baseline_path.unwrap_or_else(|| "BENCH_table1.json".to_owned());
    let tolerance = tolerance.unwrap_or(0.25);

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            eprintln!(
                "bench_guard: no committed baseline at {baseline_path} — nothing to compare \
                 against.\nbench_guard: create one with `cargo run -p awam-bench --release \
                 --bin table1 -- --json {baseline_path}` and commit it."
            );
            if advisory {
                eprintln!("bench_guard: advisory mode, treating the missing baseline as a skip");
                return;
            }
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("bench_guard: cannot read {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_guard: {baseline_path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    };
    let committed: Vec<(String, f64)> = doc
        .as_arr()
        .unwrap_or(&[])
        .iter()
        .filter_map(|row| {
            Some((
                row.get("name")?.as_str()?.to_owned(),
                float_field(row, "compiled_us")?,
            ))
        })
        .collect();
    if committed.is_empty() {
        eprintln!("bench_guard: no rows with compiled_us in {baseline_path}");
        std::process::exit(2);
    }

    eprintln!(
        "bench_guard: fresh Table 1 run vs {} committed rows (tolerance {:.0}%)",
        committed.len(),
        tolerance * 100.0
    );
    let fresh = awam_bench::table1_rows();

    println!(
        "{:<12} {:>14} {:>14} {:>8}",
        "benchmark", "committed_us", "fresh_us", "ratio"
    );
    let mut committed_times = Vec::new();
    let mut fresh_times = Vec::new();
    for (name, committed_us) in &committed {
        let Some(row) = fresh.iter().find(|r| r.name == name) else {
            eprintln!("bench_guard: committed benchmark {name} missing from fresh run");
            std::process::exit(2);
        };
        committed_times.push(*committed_us);
        fresh_times.push(row.compiled_us);
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>8.2}",
            name,
            committed_us,
            row.compiled_us,
            row.compiled_us / committed_us
        );
    }

    let committed_gm = geomean(&committed_times);
    let fresh_gm = geomean(&fresh_times);
    let ratio = fresh_gm / committed_gm;
    println!(
        "{:<12} {:>14.1} {:>14.1} {:>8.2}",
        "geomean", committed_gm, fresh_gm, ratio
    );

    if ratio > 1.0 + tolerance {
        eprintln!(
            "bench_guard: REGRESSION — fresh geomean {:.1} us is {:.0}% above committed {:.1} us \
             (tolerance {:.0}%)",
            fresh_gm,
            (ratio - 1.0) * 100.0,
            committed_gm,
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "bench_guard: ok — fresh geomean {:.1} us vs committed {:.1} us ({:+.0}%)",
        fresh_gm,
        committed_gm,
        (ratio - 1.0) * 100.0
    );
}
