//! Ablation B: the extension table as a linear list (the paper's §6
//! implementation) versus a hash-indexed table.

use absdom::Pattern;
use awam_core::{Analyzer, EtImpl};

fn main() {
    println!("Ablation B — extension-table implementation (paper: linear list)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>11} {:>11}",
        "Benchmark", "linear(us)", "hashed(us)", "ratio", "lookups", "scan-steps"
    );
    println!("{}", "-".repeat(70));
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let entry = Pattern::from_spec(b.entry_specs).expect("entry");
        let mut times = Vec::new();
        let mut stats = awam_obs::TableStats::default();
        for et in [EtImpl::Linear, EtImpl::Hashed] {
            let analyzer = Analyzer::builder()
                .et_impl(et)
                .compile(&program)
                .expect("compile");
            let analysis = analyzer.analyze(b.entry, &entry).expect("analysis");
            if et == EtImpl::Linear {
                stats = analysis.table_stats;
            }
            times.push(awam_bench::time_us(
                || {
                    let _ = analyzer.analyze(b.entry, &entry).expect("analysis");
                },
                20,
            ));
        }
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>9.2} {:>11} {:>11}",
            b.name,
            times[0],
            times[1],
            times[0] / times[1],
            stats.lookups,
            stats.scan_steps
        );
    }
    println!(
        "\nWith the handful of calling patterns per predicate these programs\n\
         produce, the paper's linear list is competitive — its simplicity is\n\
         justified (cf. §6: \"obviously more straightforward and efficient\")."
    );
}
