//! Ablation D: the paper's global-restart fixpoint iteration versus the
//! semi-naive worklist its §6 anticipates ("plenty of room left for more
//! improvements in performance based on better algorithms").

use absdom::Pattern;
use awam_core::{Analyzer, IterationStrategy};

fn main() {
    println!("Ablation D — fixpoint iteration strategy (paper: global restart)\n");
    println!(
        "{:<10} {:>12} {:>13} {:>8} | {:>10} {:>10}",
        "Benchmark", "restart(us)", "worklist(us)", "speedup", "exec(rst)", "exec(wkl)"
    );
    println!("{}", "-".repeat(72));
    let mut total = 0.0;
    let mut n = 0.0;
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let entry = Pattern::from_spec(b.entry_specs).expect("entry");
        let mut times = Vec::new();
        let mut execs = Vec::new();
        for strategy in [
            IterationStrategy::GlobalRestart,
            IterationStrategy::Dependency,
        ] {
            let analyzer = Analyzer::builder()
                .strategy(strategy)
                .compile(&program)
                .expect("compile");
            let analysis = analyzer.analyze(b.entry, &entry).expect("analysis");
            execs.push(analysis.instructions_executed);
            times.push(awam_bench::time_us(
                || {
                    let _ = analyzer.analyze(b.entry, &entry).expect("analysis");
                },
                20,
            ));
        }
        let speedup = times[0] / times[1];
        total += speedup;
        n += 1.0;
        println!(
            "{:<10} {:>12.1} {:>13.1} {:>8.2} | {:>10} {:>10}",
            b.name, times[0], times[1], speedup, execs[0], execs[1]
        );
    }
    println!("{}", "-".repeat(72));
    println!("{:<10} {:>12} {:>13} {:>8.2}", "average", "", "", total / n);
}
