//! Dump the hosted analyzer's final extension table for one benchmark
//! (debugging aid): patch the generated `main` to print the table.

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "nreverse".into());
    let b = bench_suite::by_name(&name).expect("benchmark name");
    let program = b.parse().unwrap();
    let src = hosted::HostedAnalyzer::generated_source(&program, b.entry, b.entry_specs)
        .unwrap()
        .replace(
            "run(P, Args) :- iterate(P, Args, [], _).",
            "run(P, Args) :- iterate(P, Args, [], E), write(E), nl.",
        );
    let parsed = prolog_syntax::parse_program(&src).unwrap();
    let compiled = wam::compile_program(&parsed).unwrap();
    let mut machine = wam_machine::Machine::new(&compiled);
    machine.set_max_steps(5_000_000_000);
    let sol = machine.query_str("main").unwrap();
    println!("succeeded: {}", sol.is_some());
    println!("steps: {}", machine.steps());
    println!("table:\n{}", machine.output.replace("), e(", "),\n  e("));
}
