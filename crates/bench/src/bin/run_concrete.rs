//! Sanity check: run every benchmark *concretely* on the WAM runtime (the
//! substrate the hosted analyzer also runs on) and report times. This is
//! the "PLM" role of Table 1: the same code the analyzer consumes really
//! executes.

use wam_machine::Machine;

fn main() {
    println!(
        "{:<10} {:>12} {:>14} {:>8}",
        "Benchmark", "result", "instructions", "time(ms)"
    );
    println!("{}", "-".repeat(48));
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let compiled = wam::compile_program(&program).expect("compile");
        let mut machine = Machine::new(&compiled);
        machine.set_max_steps(2_000_000_000);
        let start = std::time::Instant::now();
        let outcome = machine.query_str(b.entry);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let result = match outcome {
            Ok(Some(_)) => "succeeds",
            Ok(None) => "fails",
            Err(_) => "error",
        };
        println!(
            "{:<10} {:>12} {:>14} {:>8.2}",
            b.name,
            result,
            machine.steps(),
            elapsed
        );
    }
}
