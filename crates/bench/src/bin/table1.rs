//! Regenerate the paper's Table 1: analysis-time comparison between the
//! compiled abstract-WAM analyzer and the meta-interpreting baseline.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin table1 [--json BENCH_TABLE1.json]
//! ```
//!
//! With `--json PATH`, also write the rows (timings plus the counter
//! document of each instrumented run) as a JSON array to PATH.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = awam_bench::table1_rows();
    print!("{}", awam_bench::render_table1(&rows));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).map_or("BENCH_TABLE1.json", String::as_str);
        let doc = awam_bench::rows_to_json(&rows);
        std::fs::write(path, doc.emit_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }
}
