//! Regenerate the paper's Table 1: analysis-time comparison between the
//! compiled abstract-WAM analyzer and the meta-interpreting baseline.

fn main() {
    let rows = awam_bench::table1_rows();
    print!("{}", awam_bench::render_table1(&rows));
}
