//! Diagnostic: count allocator calls per analysis run for one benchmark.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin allocprobe [benchmark]
//! ```
//!
//! Prints total `alloc`/`realloc`/`free` calls and bytes for a single
//! cold run and for a steady-state run, so scratch-reuse regressions on
//! the hot path show up as a raw call count instead of a profile guess.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: forwards every call to `System` unchanged; the counters are
// side effects only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn snap() -> (u64, u64, u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        REALLOCS.load(Ordering::Relaxed),
        FREES.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "zebra".into());
    let b = bench_suite::by_name(&name).expect("benchmark name");
    let program = b.parse().unwrap();
    let compiled = wam::compile_program(&program).unwrap();
    let analyzer = awam_core::Analyzer::builder().build(compiled);
    let entry = absdom::Pattern::from_spec(b.entry_specs).unwrap();

    let before = snap();
    analyzer.analyze(b.entry, &entry).expect("analysis runs");
    let after = snap();
    println!(
        "{name} cold:   allocs {} reallocs {} frees {} bytes {}",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
        after.3 - before.3,
    );

    // Steady state: everything session-local is rebuilt per run, so the
    // numbers stabilize immediately; a second run is representative.
    let before = snap();
    analyzer.analyze(b.entry, &entry).expect("analysis runs");
    let after = snap();
    println!(
        "{name} steady: allocs {} reallocs {} frees {} bytes {}",
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
        after.3 - before.3,
    );
}
