//! Regenerate the paper's Figures 2 and 3: the compiled WAM code for the
//! clause `p(a, [f(V)|L]) :- …` and its reinterpretation over the abstract
//! domain for the calling pattern `p(atom, glist)`.

use awam_core::Analyzer;
use prolog_syntax::parse_program;
use wam::compile_program;

fn main() {
    // The paper's example clause, §2 and §4 (the body keeps V and L live,
    // standing in for the paper's "← …").
    let src = "p(a, [f(V)|L]) :- q(V, L). q(_, _).";
    let program = parse_program(src).expect("parse");
    let compiled = compile_program(&program).expect("compile");

    println!("Figure 2 — the WAM code for the head of p(a, [f(V)|L]):\n");
    println!("{}", compiled.listing());

    println!("\nFigure 3 — reinterpreted over the abstract domain,");
    println!("for the calling pattern p(atom, glist):\n");
    let analyzer = Analyzer::compile(&program).expect("compile");
    let analysis = analyzer
        .analyze_query("p", &["atom", "glist"])
        .expect("analyze");
    println!("{}", analysis.report(&analyzer));
    let p = analysis.predicate("p", 2).expect("p analyzed");
    let success = p.success_summary().expect("p succeeds");
    println!(
        "the head succeeds with success pattern {} —",
        success.display(analyzer.interner())
    );
    println!("the paper's composed substitution binds glist1 to [f(g2)|glist2].");
}
