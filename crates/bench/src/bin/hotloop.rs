//! Profiling helper: run one benchmark's analysis in a tight loop so a
//! sampling profiler (gprofng, perf) sees the steady-state hot path
//! without harness noise.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin hotloop [benchmark] [reps]
//! ```

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "zebra".into());
    let reps: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let b = bench_suite::by_name(&name).expect("benchmark name");
    let program = b.parse().unwrap();
    let compiled = wam::compile_program(&program).unwrap();
    let analyzer = awam_core::Analyzer::builder().build(compiled);
    let entry = absdom::Pattern::from_spec(b.entry_specs).unwrap();
    let start = std::time::Instant::now();
    let mut total = 0u64;
    for _ in 0..reps {
        let analysis = analyzer.analyze(b.entry, &entry).expect("analysis runs");
        total += analysis.instructions_executed;
    }
    eprintln!(
        "{name}: {reps} reps, {:.1} us/run, {} instrs",
        start.elapsed().as_secs_f64() * 1e6 / f64::from(reps),
        total / u64::from(reps)
    );
}
