//! The downstream-client table: what the analysis buys an optimizing
//! compiler on each benchmark — the motivation of the paper's §1 and of
//! Van Roy & Despain's "Benefits of Global Dataflow Analysis" (ref. 16).

use absdom::Pattern;
use awam_core::Analyzer;
use wam_opt::OptReport;

fn main() {
    println!("Analysis-enabled optimizations per benchmark\n");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>8} {:>7} {:>7} {:>9} {:>10}",
        "Benchmark", "read", "write", "mixed", "spec%", "rconst", "deadsw", "det-preds", "dead-cls"
    );
    println!("{}", "-".repeat(78));
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let compiled = wam::compile_program(&program).expect("compile");
        let analyzer = Analyzer::from_compiled(compiled.clone());
        let entry = Pattern::from_spec(b.entry_specs).expect("entry");
        let analysis = analyzer.analyze(b.entry, &entry).expect("analysis");
        let report = OptReport::build(&compiled, &analysis);
        let (r, w, m) = report.totals();
        let rconst: usize = report.preds.iter().map(|p| p.redundant_const_checks).sum();
        let deadsw: usize = report.preds.iter().map(|p| p.dead_switch_branches).sum();
        let det = report.preds.iter().filter(|p| p.determinate).count();
        let spec = wam_opt::specialize(&program, &analysis);
        println!(
            "{:<10} {:>6} {:>6} {:>6} {:>7.0}% {:>7} {:>7} {:>9} {:>10}",
            b.name,
            r,
            w,
            m,
            100.0 * report.specializable_fraction(),
            rconst,
            deadsw,
            det,
            spec.dead_clauses
        );
    }
    println!(
        "\nread/write = head get_* instructions provably in read-/write-mode;\n\
         rconst = constant checks decided statically; deadsw = dead switch\n\
         branches; det-preds = predicates with choice-point-free dispatch;\n\
         dead-cls = clauses removable by analysis-driven specialization."
    );
}
