//! Sanity check: the hosted analysis driver must complete (succeed) on
//! every benchmark, and report how many machine steps each takes.

fn main() {
    for b in bench_suite::all() {
        let program = b.parse().expect("parse");
        let hosted =
            hosted::HostedAnalyzer::build(&program, b.entry, b.entry_specs).expect("build");
        match hosted.run() {
            Ok(run) => println!(
                "{:<10} succeeded={} steps={}",
                b.name, run.succeeded, run.steps
            ),
            Err(e) => println!("{:<10} ERROR: {e}", b.name),
        }
    }
}
