//! Guard that the `--stats` instrumentation (per-predicate timers, span
//! tree, metrics histograms) stays cheap: analyze the whole Table 1
//! suite with profiling off and with profiling on, back to back, over
//! several repetitions, and fail when even the *best* paired ratio
//! exceeds the threshold. Pairing plain and profiled passes within a
//! few milliseconds of each other and taking the minimum ratio makes
//! the guard robust against frequency scaling and scheduler noise
//! (which corrupt individual passes but rarely every pair): a real
//! overhead regression shows up in every pair, noise does not.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin stats_overhead [--pct N] [--reps N]
//! AWAM_OVERHEAD_PCT=10 cargo run -p awam-bench --release --bin stats_overhead
//! ```
//!
//! Exits 1 on breach, so CI can use it directly.

use awam_core::AnalyzerBuilder;

/// One timed pass over the whole suite; returns total nanoseconds.
fn suite_pass(profiling: bool) -> u64 {
    let start = std::time::Instant::now();
    for b in bench_suite::all() {
        let program = b.parse().expect("suite program parses");
        let analyzer = AnalyzerBuilder::new()
            .profiling(profiling)
            .compile(&program)
            .expect("suite program compiles");
        let analysis = analyzer
            .analyze_query(b.entry, b.entry_specs)
            .expect("suite program analyzes");
        // Keep the result alive so the work is not optimized away.
        assert!(!analysis.predicates.is_empty());
        if profiling {
            assert!(analysis.profile.is_some());
        }
    }
    start.elapsed().as_nanos() as u64
}

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let pct: f64 = arg_after("--pct")
        .or_else(|| std::env::var("AWAM_OVERHEAD_PCT").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let reps: u32 = arg_after("--reps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // Warm up caches, the allocator, and the TSC calibration before
    // timing anything.
    suite_pass(false);
    suite_pass(true);

    let mut best_ratio = f64::INFINITY;
    let mut best_pair = (0u64, 0u64);
    for _ in 0..reps {
        let plain = suite_pass(false);
        let profiled = suite_pass(true);
        let ratio = profiled as f64 / plain as f64;
        if ratio < best_ratio {
            best_ratio = ratio;
            best_pair = (plain, profiled);
        }
    }

    let overhead = (best_ratio - 1.0) * 100.0;
    println!(
        "stats overhead: plain {:.2} ms, profiled {:.2} ms, overhead {overhead:+.2}% (threshold {pct}%, best of {reps} pairs)",
        best_pair.0 as f64 / 1e6,
        best_pair.1 as f64 / 1e6,
    );
    if overhead > pct {
        eprintln!("stats_overhead: instrumentation overhead {overhead:.2}% exceeds {pct}%");
        std::process::exit(1);
    }
}
