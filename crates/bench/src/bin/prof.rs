//! Phase profile of the compiled analyzer: where the time of one
//! analysis goes (extraction, materialization, table consultation), using
//! the machine's built-in nanosecond counters.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin prof [benchmark] [reps]
//! ```

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "serialise".into());
    let reps: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let b = bench_suite::by_name(&name).expect("benchmark name");
    let program = b.parse().unwrap();
    let compiled = wam::compile_program(&program).unwrap();
    let entry = absdom::Pattern::from_spec(b.entry_specs).unwrap();
    let pred = compiled.predicate(b.entry, entry.arity()).unwrap();

    let start = std::time::Instant::now();
    let mut machine = awam_core::AbstractMachine::new(&compiled, 4, awam_core::EtImpl::Linear);
    let mut calls = 0;
    for _ in 0..reps {
        machine = awam_core::AbstractMachine::new(&compiled, 4, awam_core::EtImpl::Linear);
        // The per-phase nanosecond counters are opt-in (they cost an
        // Instant read per call on the hot path).
        machine.profile_timing = true;
        machine.run_to_fixpoint(pred, &entry).unwrap();
        calls += machine.call_count;
    }
    let total = start.elapsed().as_nanos() as u64 / u64::from(reps);
    println!("benchmark:    {name} ({reps} reps)");
    println!("total/run:    {:.1} us", total as f64 / 1000.0);
    println!("calls/run:    {}", calls / u64::from(reps));
    println!("extract:      {:.1} us", machine.extract_ns as f64 / 1000.0);
    println!(
        "materialize:  {:.1} us",
        machine.materialize_ns as f64 / 1000.0
    );
    println!("table:        {:.1} us", machine.table_ns as f64 / 1000.0);
    println!("exec instrs:  {}", machine.exec_count());
}
