//! Measure incremental re-analysis: a single-clause leaf edit on the
//! largest benchmarks, warm seeded repair vs. a cold rebuild of the
//! edited source.
//!
//! ```sh
//! cargo run -p awam-bench --release --bin bench_incremental [--json BENCH_incremental.json]
//! ```
//!
//! With `--json PATH`, also write the rows (timings, invalidation
//! counters, work ratios) as a JSON array to PATH.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = awam_bench::incremental_rows();
    print!("{}", awam_bench::render_incremental(&rows));
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(i + 1)
            .map_or("BENCH_incremental.json", String::as_str);
        let doc = awam_bench::incremental_rows_to_json(&rows);
        std::fs::write(path, doc.emit_pretty()).expect("write json");
        eprintln!("wrote {path}");
    }
}
