//! Benchmark harness: timing helpers and the regenerators for the
//! paper's Table 1 and Table 2, plus our ablations.
//!
//! Binaries (run with `--release`):
//!
//! * `table1` — analysis times of the compiled analyzer vs. the
//!   Prolog-hosted (meta-interpreted and transformed) and native
//!   comparators on the eleven benchmarks, next to the paper's columns;
//! * `table2` — speed ratios across the paper's nine platforms
//!   (simulated via the published indices; see DESIGN.md §4);
//! * `figure3` — the compiled WAM code for the paper's §2/§4 example
//!   clause and its abstract execution result;
//! * `ablation_depth` — A: analysis time/precision vs. term-depth k;
//! * `ablation_et` — B: linear-list vs. hashed extension table;
//! * `ablation_domain` — C: domain precision vs. time;
//! * `ablation_strategy` — D: global-restart vs. worklist fixpoint;
//! * `opt_report` — the optimizations the analysis enables (`wam-opt`);
//! * `run_concrete` — concrete execution times of the benchmarks (sanity
//!   check that the substrate WAM actually runs them);
//! * `hosted_check` / `hosted_dump` / `prof` — inspection tools.

use absdom::Pattern;
use awam_core::{Analyzer, EtImpl, ProgramEdit, Workspace};
use awam_obs::{InvalidationStats, Json, TableStats};
use baseline::BaselineAnalyzer;
use bench_suite::Benchmark;
use hosted::{HostedAnalyzer, TransformedAnalyzer};
use prolog_syntax::term::{Program, Term};
use prolog_syntax::Symbol;
use std::time::Instant;

/// Measured results for one benchmark.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `Args` (from the parsed source).
    pub args: usize,
    /// `Preds`.
    pub preds: usize,
    /// Static WAM code size (our compiler).
    pub size: usize,
    /// Abstract instructions executed (our analyzer).
    pub exec: u64,
    /// Fixpoint iterations.
    pub iterations: u64,
    /// Compiled-analyzer time, microseconds (median of repeats).
    pub compiled_us: f64,
    /// Native meta-interpreting analyzer time, microseconds.
    pub baseline_us: f64,
    /// Prolog-hosted meta-interpreting analyzer time, microseconds (the
    /// paper's comparator: the analysis itself runs as a Prolog program
    /// on the concrete WAM).
    pub hosted_us: f64,
    /// Concrete WAM instructions the hosted analysis executes.
    pub hosted_steps: u64,
    /// Prolog-hosted *transformed* analyzer time, microseconds (the
    /// paper's other prior approach: partial evaluation into specialized
    /// Prolog).
    pub transformed_us: f64,
    /// `hosted_us / compiled_us` — the paper's Speed-Up column.
    pub speedup: f64,
    /// `baseline_us / compiled_us` — speed-up over the *native* baseline.
    pub native_speedup: f64,
    /// Extension-table counters from the instrumented compiled run.
    pub table_stats: TableStats,
    /// The full counter document of the instrumented compiled run
    /// ([`awam_core::Analysis::stats_json`]): opcode counts, machine
    /// high-water marks, per-phase analyze time.
    pub stats: Json,
    /// The paper's reported numbers.
    pub paper: bench_suite::PaperRow,
}

/// Time `f` adaptively: repeat until ≥ `min_total_ms` and ≥ 5 runs, and
/// return the *minimum* duration in microseconds — the estimator least
/// sensitive to scheduler interference on a shared machine.
pub fn time_us<F: FnMut()>(mut f: F, min_total_ms: u64) -> f64 {
    let mut best = f64::INFINITY;
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
        runs += 1;
        if runs >= 5 && start.elapsed().as_millis() as u64 >= min_total_ms {
            break;
        }
        if runs >= 2000 {
            break;
        }
    }
    best
}

/// Run the full measurement for one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails to parse, compile or analyze — the test
/// suite guarantees it does not.
pub fn run_benchmark(b: &Benchmark, depth_k: usize, et: EtImpl) -> Row {
    let program = b.parse().expect("benchmark parses");
    let compiled = wam::compile_program(&program).expect("benchmark compiles");
    let size = compiled.code_size();

    // One instrumented run for Exec / iterations.
    let analyzer = Analyzer::builder()
        .depth(depth_k)
        .et_impl(et)
        .build(compiled.clone());
    let entry = Pattern::from_spec(b.entry_specs).expect("entry spec");
    let analysis = analyzer.analyze(b.entry, &entry).expect("analysis runs");

    // Timed runs.
    let compiled_us = time_us(
        || {
            let _ = analyzer.analyze(b.entry, &entry).expect("analysis runs");
        },
        80,
    );
    let mut base = BaselineAnalyzer::new(&program)
        .expect("baseline accepts benchmark")
        .with_depth(depth_k);
    let baseline_us = time_us(
        || {
            let _ = base.analyze(b.entry, &entry).expect("baseline runs");
        },
        80,
    );
    let hosted_an =
        HostedAnalyzer::build(&program, b.entry, b.entry_specs).expect("hosted analyzer builds");
    let hosted_steps = hosted_an.run().expect("hosted analysis runs").steps;
    let hosted_us = time_us(
        || {
            let _ = hosted_an.run().expect("hosted analysis runs");
        },
        80,
    );
    let transformed_an = TransformedAnalyzer::build(&program, b.entry, b.entry_specs)
        .expect("transformed analyzer builds");
    let transformed_us = time_us(
        || {
            let _ = transformed_an.run().expect("transformed analysis runs");
        },
        80,
    );

    Row {
        name: b.name,
        args: program.total_arg_places(),
        preds: program.num_predicates(),
        size,
        exec: analysis.instructions_executed,
        iterations: analysis.iterations,
        compiled_us,
        baseline_us,
        hosted_us,
        hosted_steps,
        transformed_us,
        speedup: hosted_us / compiled_us,
        native_speedup: baseline_us / compiled_us,
        table_stats: analysis.table_stats,
        stats: analysis.stats_json(),
        paper: b.paper,
    }
}

/// The measured rows as one JSON document (`BENCH_TABLE1.json` shape):
/// timing columns plus the counter document of each instrumented run.
pub fn rows_to_json(rows: &[Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.to_owned())),
                    ("args", Json::Int(r.args as i64)),
                    ("preds", Json::Int(r.preds as i64)),
                    ("size", Json::Int(r.size as i64)),
                    ("exec", Json::Int(r.exec as i64)),
                    ("iterations", Json::Int(r.iterations as i64)),
                    ("compiled_us", Json::Float(r.compiled_us)),
                    ("baseline_us", Json::Float(r.baseline_us)),
                    ("hosted_us", Json::Float(r.hosted_us)),
                    ("hosted_steps", Json::Int(r.hosted_steps as i64)),
                    ("transformed_us", Json::Float(r.transformed_us)),
                    ("speedup", Json::Float(r.speedup)),
                    ("native_speedup", Json::Float(r.native_speedup)),
                    ("counters", r.stats.clone()),
                ])
            })
            .collect(),
    )
}

/// Run all benchmarks at the paper's settings (k = 4, linear table).
pub fn table1_rows() -> Vec<Row> {
    bench_suite::all()
        .iter()
        .map(|b| run_benchmark(b, absdom::DEFAULT_TERM_DEPTH, EtImpl::Linear))
        .collect()
}

/// Render Table 1: measured columns next to the paper's.
pub fn render_table1(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1 — The Efficiency of Dataflow Analyzers (measured | paper)\n\
         Hosted   = the analysis as a Prolog meta-interpreter on the concrete WAM\n\
                    (how Aquarius ran on Quintus — the paper's comparator);\n\
         Transf   = the analysis as a *transformed* Prolog program (the paper's\n\
                    other prior approach, cf. its section 5);\n\
         Native   = the meta-interpreting analyzer rewritten natively in Rust;\n\
         Compiled = the abstract WAM (the paper's contribution).\n\n",
    );
    out.push_str(&format!(
        "{:<10} {:>4} {:>5} | {:>5} {:>7} {:>4} | {:>11} {:>11} {:>11} {:>12} | {:>8} {:>7} | {:>5} {:>6} {:>9} {:>8}\n",
        "Benchmark", "Args", "Preds", "Size", "Exec", "Iter",
        "Hosted(us)", "Transf(us)", "Native(us)", "Compiled(us)",
        "Speed-Up", "vs Nat",
        "Size", "Exec", "Ours(ms)", "Speed-Up"
    ));
    out.push_str(&format!("{}\n", "-".repeat(152)));
    let mut total_speedup = 0.0;
    let mut total_native = 0.0;
    let mut paper_total = 0.0;
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>4} {:>5} | {:>5} {:>7} {:>4} | {:>11.0} {:>11.0} {:>11.1} {:>12.1} | {:>8.0} {:>7.1} | {:>5} {:>6} {:>9.1} {:>8.0}\n",
            r.name, r.args, r.preds, r.size, r.exec, r.iterations,
            r.hosted_us, r.transformed_us, r.baseline_us, r.compiled_us,
            r.speedup, r.native_speedup,
            r.paper.size, r.paper.exec, r.paper.ours_msec, r.paper.speedup
        ));
        total_speedup += r.speedup;
        total_native += r.native_speedup;
        paper_total += r.paper.speedup;
    }
    let n = rows.len() as f64;
    out.push_str(&format!("{}\n", "-".repeat(152)));
    out.push_str(&format!(
        "{:<10} {:>4} {:>5} | {:>5} {:>7} {:>4} | {:>11} {:>11} {:>11} {:>12} | {:>8.0} {:>7.1} | {:>5} {:>6} {:>9} {:>8.0}\n",
        "average", "", "", "", "", "", "", "", "", "", total_speedup / n, total_native / n, "", "", "", paper_total / n
    ));
    out
}

/// Render Table 2: per-platform speed ratios. With 1990s hardware
/// unavailable, the eight non-3/60 columns are regenerated by scaling our
/// measured per-benchmark ratio by the paper's published platform indices
/// (last row of the paper's Table 2); the paper's own numbers print below
/// for comparison.
pub fn render_table2(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2 — Speed Ratios on Various Platforms\n");
    out.push_str(
        "(measured: `this machine` column; other platforms simulated by the\n\
         paper's published speed indices — see DESIGN.md §4)\n\n",
    );
    let platforms = bench_suite::TABLE2_PLATFORMS;
    out.push_str(&format!("{:<10}", "Benchmark"));
    for (name, _) in &platforms[1..] {
        out.push_str(&format!(" {:>12}", name));
    }
    out.push('\n');
    out.push_str(&format!(
        "{}\n",
        "-".repeat(10 + 13 * (platforms.len() - 1))
    ));
    for r in rows {
        out.push_str(&format!("{:<10}", r.name));
        for (_, index) in &platforms[1..] {
            out.push_str(&format!(" {:>12.1}", r.speedup * index));
        }
        out.push('\n');
    }
    out.push_str("\npaper's rows (speed ratios vs Aquarius on the 3/60):\n");
    for (name, ratios) in bench_suite::TABLE2_RATIOS {
        out.push_str(&format!("{name:<10}"));
        for v in ratios {
            out.push_str(&format!(" {v:>12.1}"));
        }
        out.push('\n');
    }
    out
}

/// Measured results for one incremental-reanalysis benchmark: the cost
/// of re-analyzing after a single-clause leaf edit, warm (seeded repair
/// through [`Workspace::apply_edit`]) vs. cold (fresh analysis of the
/// edited source).
#[derive(Clone, Debug)]
pub struct IncrementalRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The edited leaf predicate, as `name/arity`.
    pub leaf: String,
    /// The duplicated clause text used as the edit.
    pub clause: String,
    /// Cold analysis of the edited source: wall time, microseconds
    /// (minimum over repeats; includes parse + compile + fixpoint).
    pub cold_us: f64,
    /// Cold fixpoint iterations under the worklist (Dependency)
    /// strategy — entry explorations, the same unit the seeded repair
    /// reports in `refix_explorations`.
    pub cold_iterations: u64,
    /// Cold abstract instructions executed (Dependency strategy).
    pub cold_exec: u64,
    /// Incremental update: wall time, microseconds (minimum over
    /// repeats; includes parse + diff + compile + migrate + repair).
    pub incremental_us: f64,
    /// Invalidation counters from the incremental update.
    pub invalidation: InvalidationStats,
    /// `refix_explorations / cold_iterations` — fraction of the cold
    /// fixpoint iterations the seeded repair re-runs (the headline
    /// incrementality claim: < 25% on every suite benchmark).
    pub iter_ratio: f64,
    /// `refix_instructions / cold_exec` — fraction of the cold abstract
    /// work the seeded repair re-executes.
    pub exec_ratio: f64,
    /// `incremental_us / cold_us` — wall-time fraction. On programs
    /// this small, parse + compile dominates both sides, so this hovers
    /// near 1 even when the repair does a fraction of the abstract work.
    pub time_ratio: f64,
}

/// The benchmarks the incremental suite edits: every Table 1 program
/// with at least five predicates — enough call-graph structure for a
/// leaf edit to have a proper cone. The rest are excluded by that
/// structural cut: the deriv family (divide10, times10, log10, ops8),
/// tak, nreverse and qsort are one or two workhorse predicates plus a
/// driver, so every clause edit covers the whole program and there is
/// nothing for the invalidation to spare.
pub const INCREMENTAL_BENCHMARKS: &[&str] = &["zebra", "serialise", "query", "queens_8"];

/// The headline subset of [`INCREMENTAL_BENCHMARKS`] the < 25% claim is
/// gated on: the largest suite members by the paper's Exec column
/// (zebra 1262, serialise 912). The win scales with program size — on
/// the five-predicate toys (query, queens_8's chain) a leaf cone is
/// most of the table, so their rows are contrast, not claim.
pub const INCREMENTAL_HEADLINE: &[&str] = &["zebra", "serialise"];

/// Collect every predicate name/arity that `term` mentions as a functor,
/// at any nesting depth (conservative: a data constructor that shadows a
/// predicate key counts as a call).
fn collect_functors(term: &Term, out: &mut Vec<(Symbol, usize)>) {
    if let Some(key) = term.functor() {
        out.push(key);
    }
    if let Term::Struct(_, args) = term {
        for arg in args {
            collect_functors(arg, out);
        }
    }
}

/// Pick the benchmark's leaf predicate: among predicates other than the
/// entry whose clause bodies mention no user predicate besides
/// themselves, the one whose reverse-dependency cone (the predicates
/// that transitively call it, per the static call graph) is smallest —
/// the edit whose invalidation spares the most. Ties break toward the
/// leaf with the fewest external call sites (fewer distinct calling
/// patterns to re-derive), then source order. Returns `name/arity` and
/// the rendered text of the predicate's first clause.
///
/// # Panics
///
/// Panics if the program has no such predicate — every suite benchmark
/// does.
fn leaf_clause(program: &Program, entry: &str) -> (String, String) {
    let index = program.predicate_index();
    let user: std::collections::HashSet<(Symbol, usize)> = index
        .iter()
        .map(|(key, _)| (key.name, key.arity))
        .collect();
    // Static call graph: callers[callee] = set of callers, over the
    // conservative deep-functor scan of each clause body.
    let mut callers: std::collections::HashMap<(Symbol, usize), Vec<(Symbol, usize)>> =
        std::collections::HashMap::new();
    for (key, clause_ids) in &index {
        for &id in clause_ids {
            let mut called = Vec::new();
            collect_functors(&program.clauses[id].body, &mut called);
            for f in called {
                if user.contains(&f) && f != (key.name, key.arity) {
                    let entry = callers.entry(f).or_default();
                    if !entry.contains(&(key.name, key.arity)) {
                        entry.push((key.name, key.arity));
                    }
                }
            }
        }
    }
    // Reverse reachability from `start`: how many predicates an edit to
    // it invalidates (itself plus everything that transitively calls it).
    let cone_size = |start: (Symbol, usize)| -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![start];
        while let Some(p) = stack.pop() {
            if seen.insert(p) {
                if let Some(cs) = callers.get(&p) {
                    stack.extend(cs.iter().copied());
                }
            }
        }
        seen.len()
    };
    // External call sites per predicate: body occurrences outside the
    // predicate's own clauses.
    let call_sites = |target: (Symbol, usize)| -> usize {
        index
            .iter()
            .filter(|(key, _)| (key.name, key.arity) != target)
            .flat_map(|(_, ids)| ids.iter())
            .map(|&id| {
                let mut called = Vec::new();
                collect_functors(&program.clauses[id].body, &mut called);
                called.iter().filter(|&&f| f == target).count()
            })
            .sum()
    };
    let mut best: Option<(usize, usize, String, String)> = None;
    for (key, clause_ids) in &index {
        let name = program.interner.resolve(key.name);
        if name == entry || name.starts_with('$') {
            continue;
        }
        let is_leaf = clause_ids.iter().all(|&id| {
            let mut called = Vec::new();
            collect_functors(&program.clauses[id].body, &mut called);
            called
                .iter()
                .all(|f| !user.contains(f) || *f == (key.name, key.arity))
        });
        if !is_leaf {
            continue;
        }
        let cone = cone_size((key.name, key.arity));
        let sites = call_sites((key.name, key.arity));
        if best
            .as_ref()
            .is_none_or(|(c, s, _, _)| (cone, sites) < (*c, *s))
        {
            let text = prolog_syntax::pretty::clause_to_string(
                &program.clauses[clause_ids[0]],
                &program.interner,
            );
            best = Some((cone, sites, format!("{name}/{}", key.arity), text));
        }
    }
    let (_, _, leaf, text) = best.expect("no leaf predicate found besides the entry");
    (leaf, text)
}

/// Measure one benchmark: duplicate its leaf predicate's first clause
/// (a real textual edit with identical semantics, so cold and warm must
/// reconverge to the same table) and compare the seeded repair against
/// a cold analysis of the edited source.
///
/// # Panics
///
/// Panics if the benchmark fails to parse, compile or analyze.
pub fn run_incremental(b: &Benchmark) -> IncrementalRow {
    let program = b.parse().expect("benchmark parses");
    let (leaf, clause) = leaf_clause(&program, b.entry);
    let edit = ProgramEdit::AddClause {
        clause: clause.clone(),
    };

    // Incremental: a fresh warm workspace per run (the edit consumes
    // it); time only the apply_edit call.
    let mut incremental_us = f64::INFINITY;
    let mut invalidation = InvalidationStats::default();
    let mut edited_source = String::new();
    for _ in 0..10 {
        let mut ws = Workspace::from_source(b.source).expect("workspace builds");
        ws.analyze(b.entry, b.entry_specs).expect("warm analysis");
        let t = Instant::now();
        invalidation = ws.apply_edit(&edit).expect("edit applies");
        incremental_us = incremental_us.min(t.elapsed().as_secs_f64() * 1e6);
        edited_source = ws.source().to_owned();
    }

    // Cold comparator: fresh parse + compile + fixpoint of the same
    // edited source under the worklist strategy, so `iterations` (entry
    // explorations) and `instructions_executed` are in the same units
    // the repair reports.
    let edited_program =
        prolog_syntax::parse_program(&edited_source).expect("edited source parses");
    let compiled = wam::compile_program(&edited_program).expect("edited source compiles");
    let cold_analyzer = Analyzer::builder()
        .strategy(awam_core::IterationStrategy::Dependency)
        .build(compiled);
    let entry_pattern = Pattern::from_spec(b.entry_specs).expect("entry spec");
    let analysis = cold_analyzer
        .analyze(b.entry, &entry_pattern)
        .expect("cold analysis");
    let cold_exec = analysis.instructions_executed;
    let cold_iterations = analysis.iterations;
    let cold_us = time_us(
        || {
            let mut ws = Workspace::from_source(&edited_source).expect("cold workspace builds");
            let _ = ws.analyze(b.entry, b.entry_specs).expect("cold analysis");
        },
        80,
    );

    IncrementalRow {
        name: b.name,
        leaf,
        clause,
        cold_us,
        cold_iterations,
        cold_exec,
        incremental_us,
        invalidation,
        iter_ratio: invalidation.refix_explorations as f64 / cold_iterations.max(1) as f64,
        exec_ratio: invalidation.refix_instructions as f64 / cold_exec.max(1) as f64,
        time_ratio: incremental_us / cold_us,
    }
}

/// Run the incremental suite over [`INCREMENTAL_BENCHMARKS`].
pub fn incremental_rows() -> Vec<IncrementalRow> {
    INCREMENTAL_BENCHMARKS
        .iter()
        .map(|name| {
            let b = bench_suite::by_name(name).expect("incremental benchmark exists");
            run_incremental(&b)
        })
        .collect()
}

/// The incremental rows as one JSON document (`BENCH_incremental.json`
/// shape).
pub fn incremental_rows_to_json(rows: &[IncrementalRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.to_owned())),
                    ("leaf", Json::Str(r.leaf.clone())),
                    ("clause", Json::Str(r.clause.clone())),
                    ("cold_us", Json::Float(r.cold_us)),
                    ("cold_iterations", Json::Int(r.cold_iterations as i64)),
                    ("cold_exec", Json::Int(r.cold_exec as i64)),
                    ("incremental_us", Json::Float(r.incremental_us)),
                    ("invalidation", r.invalidation.to_json()),
                    ("iter_ratio", Json::Float(r.iter_ratio)),
                    ("exec_ratio", Json::Float(r.exec_ratio)),
                    ("time_ratio", Json::Float(r.time_ratio)),
                ])
            })
            .collect(),
    )
}

/// Render the incremental table for the terminal.
pub fn render_incremental(rows: &[IncrementalRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Incremental re-analysis — single-clause leaf edit, warm repair vs. cold rebuild\n\n",
    );
    out.push_str(&format!(
        "{:<10} {:<14} {:>9} {:>9} {:>10} {:>7} {:>7} {:>7} {:>7}\n",
        "bench", "leaf", "cold_it", "refix_it", "cold_exec", "refix", "iter%", "exec%", "time%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<14} {:>9} {:>9} {:>10} {:>7} {:>6.1}% {:>6.1}% {:>6.1}%\n",
            r.name,
            r.leaf,
            r.cold_iterations,
            r.invalidation.refix_explorations,
            r.cold_exec,
            r.invalidation.refix_instructions,
            r.iter_ratio * 100.0,
            r.exec_ratio * 100.0,
            r.time_ratio * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helper_returns_positive() {
        let us = time_us(
            || {
                std::hint::black_box(1 + 1);
            },
            1,
        );
        assert!(us >= 0.0);
    }

    #[test]
    fn single_benchmark_runs() {
        let b = bench_suite::by_name("tak").unwrap();
        let row = run_benchmark(&b, 4, EtImpl::Linear);
        assert!(row.exec > 0);
        assert!(row.compiled_us > 0.0);
        assert!(row.baseline_us > 0.0);
        assert_eq!(row.args, 4);
    }
}
