//! Benchmark harness: timing helpers and the regenerators for the
//! paper's Table 1 and Table 2, plus our ablations.
//!
//! Binaries (run with `--release`):
//!
//! * `table1` — analysis times of the compiled analyzer vs. the
//!   Prolog-hosted (meta-interpreted and transformed) and native
//!   comparators on the eleven benchmarks, next to the paper's columns;
//! * `table2` — speed ratios across the paper's nine platforms
//!   (simulated via the published indices; see DESIGN.md §4);
//! * `figure3` — the compiled WAM code for the paper's §2/§4 example
//!   clause and its abstract execution result;
//! * `ablation_depth` — A: analysis time/precision vs. term-depth k;
//! * `ablation_et` — B: linear-list vs. hashed extension table;
//! * `ablation_domain` — C: domain precision vs. time;
//! * `ablation_strategy` — D: global-restart vs. worklist fixpoint;
//! * `opt_report` — the optimizations the analysis enables (`wam-opt`);
//! * `run_concrete` — concrete execution times of the benchmarks (sanity
//!   check that the substrate WAM actually runs them);
//! * `hosted_check` / `hosted_dump` / `prof` — inspection tools.

use absdom::Pattern;
use awam_core::{Analyzer, EtImpl};
use awam_obs::{Json, TableStats};
use baseline::BaselineAnalyzer;
use bench_suite::Benchmark;
use hosted::{HostedAnalyzer, TransformedAnalyzer};
use std::time::Instant;

/// Measured results for one benchmark.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `Args` (from the parsed source).
    pub args: usize,
    /// `Preds`.
    pub preds: usize,
    /// Static WAM code size (our compiler).
    pub size: usize,
    /// Abstract instructions executed (our analyzer).
    pub exec: u64,
    /// Fixpoint iterations.
    pub iterations: u64,
    /// Compiled-analyzer time, microseconds (median of repeats).
    pub compiled_us: f64,
    /// Native meta-interpreting analyzer time, microseconds.
    pub baseline_us: f64,
    /// Prolog-hosted meta-interpreting analyzer time, microseconds (the
    /// paper's comparator: the analysis itself runs as a Prolog program
    /// on the concrete WAM).
    pub hosted_us: f64,
    /// Concrete WAM instructions the hosted analysis executes.
    pub hosted_steps: u64,
    /// Prolog-hosted *transformed* analyzer time, microseconds (the
    /// paper's other prior approach: partial evaluation into specialized
    /// Prolog).
    pub transformed_us: f64,
    /// `hosted_us / compiled_us` — the paper's Speed-Up column.
    pub speedup: f64,
    /// `baseline_us / compiled_us` — speed-up over the *native* baseline.
    pub native_speedup: f64,
    /// Extension-table counters from the instrumented compiled run.
    pub table_stats: TableStats,
    /// The full counter document of the instrumented compiled run
    /// ([`awam_core::Analysis::stats_json`]): opcode counts, machine
    /// high-water marks, per-phase analyze time.
    pub stats: Json,
    /// The paper's reported numbers.
    pub paper: bench_suite::PaperRow,
}

/// Time `f` adaptively: repeat until ≥ `min_total_ms` and ≥ 5 runs, and
/// return the *minimum* duration in microseconds — the estimator least
/// sensitive to scheduler interference on a shared machine.
pub fn time_us<F: FnMut()>(mut f: F, min_total_ms: u64) -> f64 {
    let mut best = f64::INFINITY;
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
        runs += 1;
        if runs >= 5 && start.elapsed().as_millis() as u64 >= min_total_ms {
            break;
        }
        if runs >= 2000 {
            break;
        }
    }
    best
}

/// Run the full measurement for one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails to parse, compile or analyze — the test
/// suite guarantees it does not.
pub fn run_benchmark(b: &Benchmark, depth_k: usize, et: EtImpl) -> Row {
    let program = b.parse().expect("benchmark parses");
    let compiled = wam::compile_program(&program).expect("benchmark compiles");
    let size = compiled.code_size();

    // One instrumented run for Exec / iterations.
    let analyzer = Analyzer::builder()
        .depth(depth_k)
        .et_impl(et)
        .build(compiled.clone());
    let entry = Pattern::from_spec(b.entry_specs).expect("entry spec");
    let analysis = analyzer.analyze(b.entry, &entry).expect("analysis runs");

    // Timed runs.
    let compiled_us = time_us(
        || {
            let _ = analyzer.analyze(b.entry, &entry).expect("analysis runs");
        },
        80,
    );
    let mut base = BaselineAnalyzer::new(&program)
        .expect("baseline accepts benchmark")
        .with_depth(depth_k);
    let baseline_us = time_us(
        || {
            let _ = base.analyze(b.entry, &entry).expect("baseline runs");
        },
        80,
    );
    let hosted_an =
        HostedAnalyzer::build(&program, b.entry, b.entry_specs).expect("hosted analyzer builds");
    let hosted_steps = hosted_an.run().expect("hosted analysis runs").steps;
    let hosted_us = time_us(
        || {
            let _ = hosted_an.run().expect("hosted analysis runs");
        },
        80,
    );
    let transformed_an = TransformedAnalyzer::build(&program, b.entry, b.entry_specs)
        .expect("transformed analyzer builds");
    let transformed_us = time_us(
        || {
            let _ = transformed_an.run().expect("transformed analysis runs");
        },
        80,
    );

    Row {
        name: b.name,
        args: program.total_arg_places(),
        preds: program.num_predicates(),
        size,
        exec: analysis.instructions_executed,
        iterations: analysis.iterations,
        compiled_us,
        baseline_us,
        hosted_us,
        hosted_steps,
        transformed_us,
        speedup: hosted_us / compiled_us,
        native_speedup: baseline_us / compiled_us,
        table_stats: analysis.table_stats,
        stats: analysis.stats_json(),
        paper: b.paper,
    }
}

/// The measured rows as one JSON document (`BENCH_TABLE1.json` shape):
/// timing columns plus the counter document of each instrumented run.
pub fn rows_to_json(rows: &[Row]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("name", Json::Str(r.name.to_owned())),
                    ("args", Json::Int(r.args as i64)),
                    ("preds", Json::Int(r.preds as i64)),
                    ("size", Json::Int(r.size as i64)),
                    ("exec", Json::Int(r.exec as i64)),
                    ("iterations", Json::Int(r.iterations as i64)),
                    ("compiled_us", Json::Float(r.compiled_us)),
                    ("baseline_us", Json::Float(r.baseline_us)),
                    ("hosted_us", Json::Float(r.hosted_us)),
                    ("hosted_steps", Json::Int(r.hosted_steps as i64)),
                    ("transformed_us", Json::Float(r.transformed_us)),
                    ("speedup", Json::Float(r.speedup)),
                    ("native_speedup", Json::Float(r.native_speedup)),
                    ("counters", r.stats.clone()),
                ])
            })
            .collect(),
    )
}

/// Run all benchmarks at the paper's settings (k = 4, linear table).
pub fn table1_rows() -> Vec<Row> {
    bench_suite::all()
        .iter()
        .map(|b| run_benchmark(b, absdom::DEFAULT_TERM_DEPTH, EtImpl::Linear))
        .collect()
}

/// Render Table 1: measured columns next to the paper's.
pub fn render_table1(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1 — The Efficiency of Dataflow Analyzers (measured | paper)\n\
         Hosted   = the analysis as a Prolog meta-interpreter on the concrete WAM\n\
                    (how Aquarius ran on Quintus — the paper's comparator);\n\
         Transf   = the analysis as a *transformed* Prolog program (the paper's\n\
                    other prior approach, cf. its section 5);\n\
         Native   = the meta-interpreting analyzer rewritten natively in Rust;\n\
         Compiled = the abstract WAM (the paper's contribution).\n\n",
    );
    out.push_str(&format!(
        "{:<10} {:>4} {:>5} | {:>5} {:>7} {:>4} | {:>11} {:>11} {:>11} {:>12} | {:>8} {:>7} | {:>5} {:>6} {:>9} {:>8}\n",
        "Benchmark", "Args", "Preds", "Size", "Exec", "Iter",
        "Hosted(us)", "Transf(us)", "Native(us)", "Compiled(us)",
        "Speed-Up", "vs Nat",
        "Size", "Exec", "Ours(ms)", "Speed-Up"
    ));
    out.push_str(&format!("{}\n", "-".repeat(152)));
    let mut total_speedup = 0.0;
    let mut total_native = 0.0;
    let mut paper_total = 0.0;
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>4} {:>5} | {:>5} {:>7} {:>4} | {:>11.0} {:>11.0} {:>11.1} {:>12.1} | {:>8.0} {:>7.1} | {:>5} {:>6} {:>9.1} {:>8.0}\n",
            r.name, r.args, r.preds, r.size, r.exec, r.iterations,
            r.hosted_us, r.transformed_us, r.baseline_us, r.compiled_us,
            r.speedup, r.native_speedup,
            r.paper.size, r.paper.exec, r.paper.ours_msec, r.paper.speedup
        ));
        total_speedup += r.speedup;
        total_native += r.native_speedup;
        paper_total += r.paper.speedup;
    }
    let n = rows.len() as f64;
    out.push_str(&format!("{}\n", "-".repeat(152)));
    out.push_str(&format!(
        "{:<10} {:>4} {:>5} | {:>5} {:>7} {:>4} | {:>11} {:>11} {:>11} {:>12} | {:>8.0} {:>7.1} | {:>5} {:>6} {:>9} {:>8.0}\n",
        "average", "", "", "", "", "", "", "", "", "", total_speedup / n, total_native / n, "", "", "", paper_total / n
    ));
    out
}

/// Render Table 2: per-platform speed ratios. With 1990s hardware
/// unavailable, the eight non-3/60 columns are regenerated by scaling our
/// measured per-benchmark ratio by the paper's published platform indices
/// (last row of the paper's Table 2); the paper's own numbers print below
/// for comparison.
pub fn render_table2(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 2 — Speed Ratios on Various Platforms\n");
    out.push_str(
        "(measured: `this machine` column; other platforms simulated by the\n\
         paper's published speed indices — see DESIGN.md §4)\n\n",
    );
    let platforms = bench_suite::TABLE2_PLATFORMS;
    out.push_str(&format!("{:<10}", "Benchmark"));
    for (name, _) in &platforms[1..] {
        out.push_str(&format!(" {:>12}", name));
    }
    out.push('\n');
    out.push_str(&format!(
        "{}\n",
        "-".repeat(10 + 13 * (platforms.len() - 1))
    ));
    for r in rows {
        out.push_str(&format!("{:<10}", r.name));
        for (_, index) in &platforms[1..] {
            out.push_str(&format!(" {:>12.1}", r.speedup * index));
        }
        out.push('\n');
    }
    out.push_str("\npaper's rows (speed ratios vs Aquarius on the 3/60):\n");
    for (name, ratios) in bench_suite::TABLE2_RATIOS {
        out.push_str(&format!("{name:<10}"));
        for v in ratios {
            out.push_str(&format!(" {v:>12.1}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helper_returns_positive() {
        let us = time_us(
            || {
                std::hint::black_box(1 + 1);
            },
            1,
        );
        assert!(us >= 0.0);
    }

    #[test]
    fn single_benchmark_runs() {
        let b = bench_suite::by_name("tak").unwrap();
        let row = run_benchmark(&b, 4, EtImpl::Linear);
        assert!(row.exec > 0);
        assert!(row.compiled_us > 0.0);
        assert!(row.baseline_us > 0.0);
        assert_eq!(row.args, 4);
    }
}
