//! Batch-analysis throughput: aggregate wall-clock for analyzing all
//! eleven Table 1 programs, sequentially vs. fanned across worker
//! threads with the same `par_map` driver `Analyzer::analyze_batch`
//! uses. The workspace builds offline (no criterion), so timings are a
//! minimum over repeated whole-batch passes.
//!
//! Run with `cargo bench --bench batch_throughput`.

use absdom::Pattern;
use awam_core::{par_map, Analyzer, Session};
use std::hint::black_box;
use std::time::Instant;

/// One batch job: a compiled analyzer and its entry goal, prepared up
/// front so the timed region is pure analysis.
struct Job {
    analyzer: Analyzer,
    entry_name: &'static str,
    entry: Pattern,
    name: &'static str,
}

fn prepare() -> Vec<Job> {
    bench_suite::all()
        .into_iter()
        .map(|b| {
            let program = b.parse().expect("benchmark parses");
            Job {
                analyzer: Analyzer::compile(&program).expect("benchmark compiles"),
                entry_name: b.entry,
                entry: Pattern::from_spec(b.entry_specs).expect("entry spec"),
                name: b.name,
            }
        })
        .collect()
}

/// Run the whole suite once on `workers` threads; returns wall-clock ns.
fn run_batch(jobs: &[Job], workers: usize) -> u128 {
    let start = Instant::now();
    let results = par_map(jobs, workers, |_, job| {
        let mut session = Session::new(&job.analyzer);
        session.analyze(job.entry_name, &job.entry)
    });
    let elapsed = start.elapsed().as_nanos();
    for (job, result) in jobs.iter().zip(results) {
        black_box(result).unwrap_or_else(|e| panic!("{}: {e}", job.name));
    }
    elapsed
}

fn min_ns(jobs: &[Job], workers: usize, passes: u32) -> u128 {
    (0..passes).map(|_| run_batch(jobs, workers)).min().unwrap()
}

fn main() {
    let jobs = prepare();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let passes = 20;
    println!(
        "batch_throughput: {} programs per batch, min of {passes} passes",
        jobs.len()
    );
    let baseline = min_ns(&jobs, 1, passes);
    println!(
        "batch/workers=1  {:>10.2} us  (1.00x)",
        baseline as f64 / 1e3
    );
    let mut tiers: Vec<usize> = [2, 4, cores].into_iter().filter(|&w| w > 1).collect();
    tiers.sort_unstable();
    tiers.dedup();
    for workers in tiers {
        let ns = min_ns(&jobs, workers, passes);
        println!(
            "batch/workers={workers}  {:>10.2} us  ({:.2}x)",
            ns as f64 / 1e3,
            baseline as f64 / ns as f64
        );
    }
}
