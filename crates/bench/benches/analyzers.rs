//! Criterion benches: one group per Table 1 column.
//!
//! `analysis_compiled/*` — the abstract WAM (the paper's contribution);
//! `analysis_native/*` — the native meta-interpreting baseline;
//! `analysis_hosted/*` — the Prolog-hosted analyzer on the concrete WAM;
//! `concrete_execution/*` — plain execution of the benchmarks;
//! `domain/*` — micro-benchmarks of the abstract-domain machinery.

use absdom::Pattern;
use awam_core::Analyzer;
use baseline::BaselineAnalyzer;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn analysis_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_compiled");
    for b in bench_suite::all() {
        let program = b.parse().unwrap();
        let mut analyzer = Analyzer::compile(&program).unwrap();
        let entry = Pattern::from_spec(b.entry_specs).unwrap();
        group.bench_function(b.name, |bench| {
            bench.iter(|| black_box(analyzer.analyze(b.entry, &entry).unwrap()));
        });
    }
    group.finish();
}

fn analysis_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_native");
    for b in bench_suite::all() {
        let program = b.parse().unwrap();
        let mut analyzer = BaselineAnalyzer::new(&program).unwrap();
        let entry = Pattern::from_spec(b.entry_specs).unwrap();
        group.bench_function(b.name, |bench| {
            bench.iter(|| black_box(analyzer.analyze(b.entry, &entry).unwrap()));
        });
    }
    group.finish();
}

fn analysis_hosted(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_hosted");
    group.sample_size(10);
    for b in bench_suite::all() {
        let program = b.parse().unwrap();
        let hosted = hosted::HostedAnalyzer::build(&program, b.entry, b.entry_specs).unwrap();
        group.bench_function(b.name, |bench| {
            bench.iter(|| black_box(hosted.run().unwrap()));
        });
    }
    group.finish();
}

fn concrete_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("concrete_execution");
    group.sample_size(10);
    for b in bench_suite::all() {
        // tak(18,12,6) runs 1.4M instructions; keep it but with few samples.
        let program = b.parse().unwrap();
        let compiled = wam::compile_program(&program).unwrap();
        group.bench_function(b.name, |bench| {
            bench.iter(|| {
                let mut machine = wam_machine::Machine::new(&compiled);
                machine.set_max_steps(2_000_000_000);
                black_box(machine.query_str(b.entry).unwrap())
            });
        });
    }
    group.finish();
}

fn domain_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("domain");
    let p = Pattern::from_spec(&["glist", "list(any)", "var", "g"]).unwrap();
    let q = Pattern::from_spec(&["list(int)", "glist", "g", "nv"]).unwrap();
    group.bench_function("pattern_lub", |bench| {
        bench.iter(|| black_box(p.lub(&q)));
    });
    group.bench_function("pattern_eq", |bench| {
        bench.iter(|| black_box(p == q));
    });
    let mut heap = Vec::new();
    let cells = awam_core::extract::materialize(&mut heap, &p);
    group.bench_function("extract", |bench| {
        bench.iter(|| black_box(awam_core::extract::extract(&heap, &cells, 4)));
    });
    group.bench_function("match_hit", |bench| {
        bench.iter(|| black_box(awam_core::matcher::matches(&heap, &cells, 4, &p)));
    });
    group.bench_function("match_miss", |bench| {
        bench.iter(|| black_box(awam_core::matcher::matches(&heap, &cells, 4, &q)));
    });
    group.finish();
}

criterion_group!(
    benches,
    analysis_compiled,
    analysis_native,
    analysis_hosted,
    concrete_execution,
    domain_micro
);
criterion_main!(benches);
