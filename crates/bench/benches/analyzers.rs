//! Benches: one group per Table 1 column, timed with the workspace's own
//! adaptive minimum-of-N timer (`awam_bench::time_us`) — the workspace
//! builds offline, so no criterion.
//!
//! `analysis_compiled/*` — the abstract WAM (the paper's contribution);
//! `analysis_native/*` — the native meta-interpreting baseline;
//! `analysis_hosted/*` — the Prolog-hosted analyzer on the concrete WAM;
//! `concrete_execution/*` — plain execution of the benchmarks;
//! `domain/*` — micro-benchmarks of the abstract-domain machinery.
//!
//! Run with `cargo bench --bench analyzers`.

use absdom::Pattern;
use awam_bench::time_us;
use awam_core::Analyzer;
use baseline::BaselineAnalyzer;
use std::hint::black_box;

const MIN_MS: u64 = 200;
const MIN_MS_SLOW: u64 = 50;

fn report(group: &str, name: &str, us: f64) {
    println!("{group}/{name:<24} {us:>12.2} us");
}

fn analysis_compiled() {
    for b in bench_suite::all() {
        let program = b.parse().unwrap();
        let analyzer = Analyzer::compile(&program).unwrap();
        let entry = Pattern::from_spec(b.entry_specs).unwrap();
        let us = time_us(
            || {
                black_box(analyzer.analyze(b.entry, &entry).unwrap());
            },
            MIN_MS,
        );
        report("analysis_compiled", b.name, us);
    }
}

fn analysis_native() {
    for b in bench_suite::all() {
        let program = b.parse().unwrap();
        let mut analyzer = BaselineAnalyzer::new(&program).unwrap();
        let entry = Pattern::from_spec(b.entry_specs).unwrap();
        let us = time_us(
            || {
                black_box(analyzer.analyze(b.entry, &entry).unwrap());
            },
            MIN_MS,
        );
        report("analysis_native", b.name, us);
    }
}

fn analysis_hosted() {
    for b in bench_suite::all() {
        let program = b.parse().unwrap();
        let hosted = hosted::HostedAnalyzer::build(&program, b.entry, b.entry_specs).unwrap();
        let us = time_us(
            || {
                black_box(hosted.run().unwrap());
            },
            MIN_MS_SLOW,
        );
        report("analysis_hosted", b.name, us);
    }
}

fn concrete_execution() {
    for b in bench_suite::all() {
        // tak(18,12,6) runs 1.4M instructions; keep it but with few samples.
        let program = b.parse().unwrap();
        let compiled = wam::compile_program(&program).unwrap();
        let us = time_us(
            || {
                let mut machine = wam_machine::Machine::new(&compiled);
                machine.set_max_steps(2_000_000_000);
                black_box(machine.query_str(b.entry).unwrap());
            },
            MIN_MS_SLOW,
        );
        report("concrete_execution", b.name, us);
    }
}

fn domain_micro() {
    let p = Pattern::from_spec(&["glist", "list(any)", "var", "g"]).unwrap();
    let q = Pattern::from_spec(&["list(int)", "glist", "g", "nv"]).unwrap();
    report(
        "domain",
        "pattern_lub",
        time_us(
            || {
                black_box(p.lub(&q));
            },
            MIN_MS,
        ),
    );
    report(
        "domain",
        "pattern_eq",
        time_us(
            || {
                black_box(p == q);
            },
            MIN_MS,
        ),
    );
    let mut heap = Vec::new();
    let cells = awam_core::extract::materialize(&mut heap, &p);
    report(
        "domain",
        "extract",
        time_us(
            || {
                black_box(awam_core::extract::extract(&heap, &cells, 4));
            },
            MIN_MS,
        ),
    );
    report(
        "domain",
        "match_hit",
        time_us(
            || {
                black_box(awam_core::matcher::matches(&heap, &cells, 4, &p));
            },
            MIN_MS,
        ),
    );
    report(
        "domain",
        "match_miss",
        time_us(
            || {
                black_box(awam_core::matcher::matches(&heap, &cells, 4, &q));
            },
            MIN_MS,
        ),
    );
}

fn main() {
    analysis_compiled();
    analysis_native();
    analysis_hosted();
    concrete_execution();
    domain_micro();
}
