//! Extension-table consult cost: structural linear scan vs. structural
//! ordered index vs. interned-id probe, at 10/100/1000 memoized calling
//! patterns.
//!
//! The production table only stores interned `PatternId`s now, so the
//! two structural comparators are rebuilt here exactly as the table used
//! to implement them: a `Vec<Pattern>` scanned by structural equality
//! (the paper's linear list) and a `BTreeMap<Pattern, usize>` whose
//! probes pay O(log n) full pattern `Ord` walks (the pre-interning
//! `Hashed` index). The interned probe hashes the probe pattern once
//! into the session interner, then looks up a fixed-seed
//! `FxHashMap<PatternId, usize>` — the consult path `EtImpl::Hashed`
//! uses today.
//!
//! The workload models what one predicate's extension table actually
//! holds: a *family* of calling patterns produced by the same call
//! sites, sharing their argument skeleton (functors and shape) and
//! differing only in leaves deep inside the terms. Canonical numbering
//! is pre-order, so structural comparisons must walk the whole common
//! prefix before reaching a difference, while the interner's bounded
//! suffix hash reaches it in O(1). (For a table of *unrelated* tiny
//! patterns that diverge at their first node, structural comparisons
//! early-exit immediately and interning's consult win shrinks to its
//! asymptotic O(1)-vs-O(log n) edge — real tables are families.)
//!
//! The workspace builds offline (no criterion): timings are min-of-passes
//! over a deterministic xorshift64* workload. Run with
//! `cargo bench --bench et_lookup`.

use absdom::{AbsLeaf, FxHashMap, PNode, Pattern, PatternId, SessionInterner};
use prolog_syntax::Symbol;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// xorshift64* — the workspace's deterministic PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds one member of the calling-pattern family: a fixed skeleton
/// `f(g(h(·,·,·), h(·,·,·)), g(h(·,·,·), h(·,·,·)))` over twelve leaf
/// slots, where only the last three (the rightmost, deepest leaves — the
/// *end* of the canonical pre-order node table) vary between members.
struct FamilyBuilder<'a> {
    nodes: Vec<PNode>,
    emitted_leaves: usize,
    rng: &'a mut Rng,
}

/// Leaf slots that are identical across the family (out of 12).
const FIXED_LEAVES: usize = 9;

impl FamilyBuilder<'_> {
    fn push(&mut self, node: PNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn leaf(&mut self) -> usize {
        let node = if self.emitted_leaves < FIXED_LEAVES {
            PNode::Leaf(AbsLeaf::Ground)
        } else if self.rng.below(4) == 0 {
            PNode::Int(self.rng.below(20) as i64)
        } else {
            PNode::Leaf(AbsLeaf::ALL[self.rng.below(AbsLeaf::ALL.len() as u64) as usize])
        };
        self.emitted_leaves += 1;
        self.push(node)
    }

    fn h(&mut self, h: Symbol) -> usize {
        let a = self.leaf();
        let b = self.leaf();
        let c = self.leaf();
        self.push(PNode::Struct(h, vec![a, b, c]))
    }

    fn g(&mut self, g: Symbol, h: Symbol) -> usize {
        let a = self.h(h);
        let b = self.h(h);
        self.push(PNode::Struct(g, vec![a, b]))
    }
}

fn family_member(rng: &mut Rng, f: Symbol, g: Symbol, h: Symbol) -> Pattern {
    let mut b = FamilyBuilder {
        nodes: Vec::new(),
        emitted_leaves: 0,
        rng,
    };
    let left = b.g(g, h);
    let right = b.g(g, h);
    let arg0 = b.push(PNode::Struct(f, vec![left, right]));
    let elem = b.push(PNode::Leaf(AbsLeaf::Ground));
    let arg1 = b.push(PNode::List(elem));
    let arg2 = b.push(PNode::Leaf(AbsLeaf::Var));
    Pattern::new(b.nodes, vec![arg0, arg1, arg2])
}

/// `n` distinct family members (regenerating on collisions,
/// deterministically).
fn distinct_patterns(rng: &mut Rng, n: usize) -> Vec<Pattern> {
    let mut symbols = prolog_syntax::Interner::new();
    let f = symbols.intern("f");
    let g = symbols.intern("g");
    let h = symbols.intern("h");
    let mut out: Vec<Pattern> = Vec::with_capacity(n);
    while out.len() < n {
        let p = family_member(rng, f, g, h);
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

const PASSES: u32 = 30;
const LOOKUPS_PER_PASS: usize = 2_000;

/// Min-of-passes nanoseconds for `LOOKUPS_PER_PASS` consults.
fn time_ns(mut consult: impl FnMut(usize) -> Option<usize>, probes: &[usize]) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..PASSES {
        let start = Instant::now();
        for i in 0..LOOKUPS_PER_PASS {
            black_box(consult(probes[i % probes.len()]));
        }
        best = best.min(start.elapsed().as_nanos());
    }
    best
}

fn main() {
    println!(
        "et_lookup: {} consults per pass, min of {} passes; per-consult ns",
        LOOKUPS_PER_PASS, PASSES
    );
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>10}",
        "entries", "linear(ns)", "struct-ord(ns)", "interned(ns)", "speedup"
    );
    let mut rng = Rng::new(0x0E71_100C);
    for &n in &[10usize, 100, 1000] {
        let patterns = distinct_patterns(&mut rng, n);
        // Probe order: a deterministic shuffle over the stored patterns
        // (every consult is a hit, like a converged fixpoint's steady
        // state, where consult cost dominates).
        let probes: Vec<usize> = (0..LOOKUPS_PER_PASS)
            .map(|_| rng.below(n as u64) as usize)
            .collect();

        // Structural linear list — the paper's table.
        let linear: Vec<Pattern> = patterns.clone();
        let linear_ns = time_ns(
            |probe| linear.iter().position(|p| *p == patterns[probe]),
            &probes,
        );

        // Structural ordered index — the pre-interning `Hashed` impl
        // (`BTreeMap<Pattern, usize>`: O(log n) pattern Ord walks).
        let structural: BTreeMap<Pattern, usize> = patterns.iter().cloned().zip(0..).collect();
        let structural_ns = time_ns(|probe| structural.get(&patterns[probe]).copied(), &probes);

        // Interned probe — today's `Hashed` impl: hash the probe pattern
        // once into the interner (every steady-state consult is a dedup
        // hit: no clone, no allocation), then an id-keyed fixed-seed
        // hash-map lookup, as in the production table.
        let mut interner = SessionInterner::default();
        let index: FxHashMap<PatternId, usize> = patterns
            .iter()
            .map(|p| interner.intern(p.clone()))
            .zip(0..)
            .collect();
        let interned_ns = time_ns(
            |probe| {
                let id = interner.lookup(&patterns[probe])?;
                index.get(&id).copied()
            },
            &probes,
        );

        let per = |ns: u128| ns as f64 / LOOKUPS_PER_PASS as f64;
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>16.1} {:>9.2}x",
            n,
            per(linear_ns),
            per(structural_ns),
            per(interned_ns),
            structural_ns as f64 / interned_ns as f64
        );
    }
    println!("speedup = structural ordered index / interned probe");
}
